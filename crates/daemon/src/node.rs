//! One PeerTrack/Chord node served over real sockets.
//!
//! [`Node::spawn`] binds a listener and runs a single-threaded engine
//! that owns this site's slice of the state the simulator's `NetWorld`
//! keeps globally: the Chord routing replica, the capture window, the
//! IOP repository and the gateway shards. The engine is a
//! readiness-driven event loop over nonblocking sockets
//! ([`transport::nio`], std-only): each poll wakeup drains whatever
//! bytes the kernel has per connection, decodes as many whole frames
//! as arrived (many requests in flight per connection), processes them
//! strictly serially — every state transition as atomic as the
//! simulator's event handlers — and then *commits the batch*: one WAL
//! fsync covering every record the wakeup logged, after which (and
//! never before) the batch's responses are released to their
//! connections' write buffers. DESIGN.md §14 specifies the loop.
//!
//! **Core/engine split.** Since the durability work the node is two
//! layers. [`Core`] is the deterministic state machine: it holds every
//! replicated field and advances *only* through
//! [`Core::apply_record`], whose input vocabulary
//! ([`crate::state::WalRecord`]) is exactly what the write-ahead log
//! stores. Outbound protocol messages leave the core through an
//! `outbox` rather than a socket, so the same `apply` call serves both
//! live execution (the engine drains the outbox onto TCP) and crash
//! recovery (replay drops it — every peer already received those
//! messages in the first life). [`Engine`] owns everything a replay
//! must not touch: the listener, the connection cache, the wall-clock
//! latency recorder and the [`durable::DataDir`]. Its single write
//! path is `log_apply`: append to the WAL, then apply — state is never
//! mutated by an event the log does not hold.
//!
//! **Accounting bridge.** The engine charges the *model* cost the
//! simulator would charge — `Msg::wire_size()` bytes (not encoded frame
//! length), overlay hops from the Chord lookup, one message per
//! protocol send, queries bulk-charged at the origin — into its own
//! [`simnet::metrics::Metrics`]. Self-sends are handled inline and
//! uncharged, exactly like `NetWorld::dispatch`. Merging every node's
//! metrics therefore reproduces the simulator's global tally for the
//! same workload (asserted by `tests/tests/cluster_parity.rs`).
//!
//! **Routing.** Query-driven lookups run the iterative protocol for
//! real: the origin drives [`chord::LookupDriver`] and asks each hop
//! over the network ([`Frame::LookupStep`]); every node answers from
//! its own replica. Replicas are rebuilt deterministically from the
//! sorted membership (bootstrap-lowest-site, ascending joins, full
//! stabilization), so a converged cluster routes identically to the
//! simulator's single ring — which is also why the *indexing* path
//! (inside the core, where no sockets exist) may answer the same
//! lookup from the local replica: on identical replicas the iterative
//! walk and the local walk visit the same nodes and charge the same
//! hops, a parity the cluster tests pin down.
//!
//! **Deadlock-freedom.** While a query (locate/trace) waits for a peer
//! RPC reply, the engine keeps pumping the event loop in *nested* mode:
//! every read-only RPC (`LookupStep`, record reads, probes) and the
//! whole asynchronous protocol plane are served immediately; only
//! frames that would start another query (or stop the node) are
//! deferred. Two nodes querying each other therefore both make
//! progress — each answers the other's lookup steps from inside its own
//! wait loop — and RPC recursion is bounded at depth 1 because a nested
//! pump never starts a query. Per-connection response order is
//! preserved by suspending the querying connection's inbox until its
//! query completes.
//!
//! **Virtual time.** There are no `Tmax` timers off-sim: the driver
//! carries explicit virtual instants ([`Frame::Capture`]`.at`) and
//! closes windows with [`Frame::Flush`]`{now}` when the simulator's
//! timer would have fired. Wall-clock exists only in the latency
//! histograms ([`obs::Recorder::record_latency`]).

use crate::proto::{CostWire, Frame, ProtoError};
use crate::state::WalRecord;
use chord::{answer_step, LookupDriver, LookupResult, LookupState, Ring};
use durable::{DataDir, FsyncMode};
use ids::{Id, Prefix};
use moods::{ObjectId, Path, SiteId, Visit};
use obs::Recorder;
use peertrack::config::GroupConfig;
use peertrack::grouping::group_batch;
use peertrack::messages::{Msg, Wire};
use peertrack::query::QUERY_MSG_BYTES;
use peertrack::bytebuf::ByteBuf;
use peertrack::codec;
use peertrack::store::{GatewayStore, IndexEntry, IopRecord, IopStore, Link, PrefixIndex};
use peertrack::window::{WindowBatch, WindowBuffer, WindowEvent};
use peertrack::world::Anomalies;
use qcache::LocateCache;
use simnet::metrics::{Metrics, MsgClass};
use simnet::SimTime;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use transport::frame::write_frame;
use transport::{Backoff, ConnCache, FrameAccum, NbConn, NbListener};

/// The ring identity of a site, matching the simulator's derivation
/// (`peertrack::net::Builder`) so lookups hash identically.
pub fn chord_id_for(seed: u64, site: SiteId) -> Id {
    let i = site.0 as usize;
    Id::hash_str(&format!("site-{seed}-{i}"))
}

/// Wall clock in µs since the Unix epoch (latency envelopes only —
/// never used for protocol decisions).
fn wall_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Default snapshot cadence: install a snapshot and truncate the log
/// every this many WAL records.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// Static configuration of one daemon node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This site's id (also its Chord `app_index`).
    pub site: SiteId,
    /// Cluster-wide seed: determines every site's ring identity.
    pub seed: u64,
    /// Group-indexing parameters. The daemon supports the paper's
    /// experiment regime: group mode with `SizeEstimation::Exact`
    /// semantics (`Lp` from the known membership count).
    pub group: GroupConfig,
    /// Listen address, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub listen: String,
    /// Existing member to join through (`None` = this node bootstraps
    /// the cluster).
    pub bootstrap: Option<SocketAddr>,
    /// Durable state directory. `None` (the default everywhere) keeps
    /// the node fully in-memory — the pre-durability behaviour.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync policy; meaningful only with `data_dir`.
    pub fsync: FsyncMode,
    /// Install a snapshot (and compact the WAL) every this many logged
    /// records; meaningful only with `data_dir`.
    pub snapshot_every: u64,
    /// Replication factor `K`: every site's IOP repository and gateway
    /// shards are copied onto its `K−1` ring successors, and the
    /// cluster survives up to `K−1` permanent losses with oracle-exact
    /// queries. `1` (the default) disables replication entirely — the
    /// pre-replication behaviour, byte-identical state encodings
    /// included. Must match across the cluster, like `seed`.
    pub replicas: usize,
    /// Locate-answer cache capacity (DESIGN.md §15). `None` (the
    /// default) disables the cache entirely. The cache is engine-side
    /// volatile state: excluded from the canonical state encoding and
    /// from snapshots, rebuilt cold after a restart. Unlike `replicas`
    /// it is per-node — nodes with different capacities interoperate.
    pub locate_cache: Option<usize>,
    /// WAN region topology (DESIGN.md §17). `None` (the default) is the
    /// flat pre-geo behaviour. With a topology, the node derives its
    /// region from its site id, injects the topology's per-pair base
    /// latency as a one-time dial delay on every outbound connection
    /// (test builds; [`transport::ConnCache::set_dial_delay`]) and
    /// honors [`Frame::RegionCut`]/[`Frame::RegionHeal`] by parking
    /// protocol frames across severed pairs. Engine-side network-plane
    /// state: never logged, never in the canonical state encoding.
    /// Must agree across the cluster, like `seed`.
    pub geo: Option<geo::Topology>,
}

impl NodeConfig {
    /// Loopback config with an ephemeral port (in-memory).
    pub fn loopback(site: SiteId, seed: u64, bootstrap: Option<SocketAddr>) -> NodeConfig {
        NodeConfig {
            site,
            seed,
            group: GroupConfig::default(),
            listen: "127.0.0.1:0".to_string(),
            bootstrap,
            data_dir: None,
            fsync: FsyncMode::Never,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            replicas: 1,
            locate_cache: None,
            geo: None,
        }
    }
}

/// Everything a node hands back when it shuts down.
pub struct NodeReport {
    /// The site that ran.
    pub site: SiteId,
    /// Model accounting (merge across nodes to compare with the
    /// simulator's global tally).
    pub metrics: Metrics,
    /// Protocol anomaly counters (all zero in a clean run).
    pub anomalies: Anomalies,
    /// Protocol situations the daemon does not implement (refresh
    /// fetches, delegation, individual mode); zero within the supported
    /// regime — the parity test asserts it.
    pub unsupported: u64,
    /// Wall-clock delivery-latency histograms per message class, plus
    /// origin-side query latencies under [`MsgClass::Query`].
    pub recorder: Recorder,
    /// Protocol-plane frames sent to other nodes.
    pub sent: u64,
    /// Protocol-plane frames received.
    pub received: u64,
    /// Times a connection crossed the bounded-outbox limit
    /// ([`OUTBOX_LIMIT_BYTES`]) and was parked — reads and request
    /// processing suspended until the client drained its responses.
    /// Zero unless some client stopped reading what it asked for.
    pub backpressure_parks: u64,
}

/// A running node: its address plus the engine thread's handle.
pub struct Node {
    site: SiteId,
    addr: SocketAddr,
    engine: Option<JoinHandle<NodeReport>>,
}

impl Node {
    /// Bind the listener, recover durable state (if a data dir is
    /// configured), join through the bootstrap peer (if any) and start
    /// the engine thread. Recovery failures — an unreadable data dir, a
    /// corrupt snapshot — fail the spawn loudly rather than starting a
    /// node with fabricated state.
    pub fn spawn(cfg: NodeConfig) -> io::Result<Node> {
        let listener = NbListener::bind(&cfg.listen)?;
        let addr = listener.local_addr();
        let site = cfg.site;
        let engine = Engine::new(cfg, addr, listener)?;
        let handle = std::thread::Builder::new()
            .name(format!("peertrackd-{}", site.0))
            .spawn(move || engine.run())?;
        Ok(Node { site, addr, engine: Some(handle) })
    }

    /// The site this node serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The bound listener address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the engine to exit (send [`Frame::Shutdown`] or
    /// [`Frame::Crash`] first) and collect its report.
    pub fn join(mut self) -> NodeReport {
        self.engine
            .take()
            .expect("join called once")
            .join()
            .expect("engine thread panicked")
    }
}

/// `NodeHandle` is the public alias used by the harness and binary.
pub type NodeHandle = Node;

/// Origin-side query cost accumulator (mirrors the private
/// `peertrack::query::QueryCost::step`).
#[derive(Clone, Copy, Debug, Default)]
struct Cost {
    messages: u64,
    hops: u64,
    bytes: u64,
}

impl Cost {
    fn step(&mut self, n: u64) {
        self.messages += n;
        self.hops += n;
        self.bytes += n * QUERY_MSG_BYTES as u64;
    }

    fn wire(&self) -> CostWire {
        CostWire { messages: self.messages, hops: self.hops, bytes: self.bytes }
    }
}

/// Traversal anchor (mirrors `peertrack::query::Anchor`).
enum Anchor {
    Record(SiteId),
    Latest(Link),
}

/// A protocol message the core wants delivered. The core has already
/// sequenced it, charged the model cost and counted it sent; the
/// engine's only job is the socket write (and undoing the `sent` count
/// if that write fails).
#[derive(Clone, Debug)]
pub struct Outbound {
    /// Destination site.
    pub to: SiteId,
    /// Model overlay hops charged for this delivery.
    pub hops: u32,
    /// Sequenced protocol payload.
    pub wire: Wire,
}

/// The deterministic half of a node: every field that must survive a
/// crash, advanced only by [`Core::apply_record`]. No sockets, no
/// clocks, no filesystem — the same struct runs live under the engine
/// and offline under WAL replay, and `tests/tests/crash_recovery.rs`
/// holds the two byte-identical.
pub struct Core {
    pub(crate) site: SiteId,
    pub(crate) seed: u64,
    pub(crate) group: GroupConfig,
    /// Site → listener address, self included. Sorted iteration keeps
    /// ring rebuilds deterministic.
    pub(crate) members: BTreeMap<SiteId, SocketAddr>,
    pub(crate) ring: Ring,
    pub(crate) lp: usize,
    pub(crate) window: WindowBuffer,
    pub(crate) iop: IopStore,
    pub(crate) gateway: GatewayStore,
    pub(crate) hosted: HashSet<Prefix>,
    pub(crate) metrics: Metrics,
    pub(crate) next_seq: u64,
    /// `(sender, seq)` pairs already processed (duplicate suppression,
    /// mirroring the simulator's per-site `seen_seqs`).
    pub(crate) seen: HashSet<(u32, u64)>,
    pub(crate) sent: u64,
    pub(crate) received: u64,
    pub(crate) anomalies: Anomalies,
    /// Diagnostic only: bumped by un-logged read-side probes too, so it
    /// is deliberately *excluded* from the canonical state encoding.
    pub(crate) unsupported: u64,
    /// Messages produced by the last `apply_record`, awaiting delivery.
    pub(crate) outbox: Vec<Outbound>,
    /// Replication factor `K` (config, not logged state — it must match
    /// across the cluster and across restarts, like `seed`). `1`
    /// disables every replication path below.
    pub(crate) replicas: usize,
    /// Sites declared permanently dead ([`WalRecord::Dead`]); never
    /// rejoin, and IOP updates aimed at them are redirected to their
    /// replica holders.
    pub(crate) dead: std::collections::BTreeSet<SiteId>,
    /// This node's replica copies of other primaries' IOP repositories,
    /// keyed by primary. Sorted iteration keeps the state encoding
    /// canonical.
    pub(crate) replica_iop: BTreeMap<SiteId, IopStore>,
    /// This node's replica copies of other primaries' gateway stores.
    pub(crate) replica_gateway: BTreeMap<SiteId, GatewayStore>,
}

impl Core {
    /// Fresh state for `site`: a one-member ring of itself.
    pub fn new(site: SiteId, seed: u64, group: GroupConfig, addr: SocketAddr) -> Core {
        let mut members = BTreeMap::new();
        members.insert(site, addr);
        let mut c = Core {
            site,
            seed,
            group,
            members,
            ring: Ring::new(),
            lp: group.l_min,
            window: WindowBuffer::new(site, group.n_max),
            iop: IopStore::new(),
            gateway: GatewayStore::new(),
            hosted: HashSet::new(),
            metrics: Metrics::new(),
            next_seq: 1,
            seen: HashSet::new(),
            sent: 0,
            received: 0,
            anomalies: Anomalies::default(),
            unsupported: 0,
            outbox: Vec::new(),
            replicas: 1,
            dead: std::collections::BTreeSet::new(),
            replica_iop: BTreeMap::new(),
            replica_gateway: BTreeMap::new(),
        };
        c.rebuild_ring();
        c
    }

    /// Apply one logged event. This is the node's *only* state-mutating
    /// entry point; everything it emits lands in the outbox.
    pub fn apply_record(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::Member { site, addr } => {
                if self.dead.contains(site) {
                    return; // kill-forever: a dead site never rejoins
                }
                if let Ok(a) = addr.parse() {
                    self.members.insert(*site, a);
                    self.rebuild_ring();
                    self.replica_maintenance();
                }
            }
            WalRecord::Capture { at, objects } => self.on_capture(*at, objects),
            WalRecord::Flush { now } => self.on_flush(*now),
            WalRecord::Protocol { sender, wire } => self.on_protocol(*sender, wire),
            WalRecord::Query { messages, hops, bytes } => {
                self.metrics.record_bulk(MsgClass::Query, *messages, *bytes, *hops);
            }
            WalRecord::Dead { site } => self.on_dead(*site),
        }
    }

    /// Apply during recovery: identical transition, but the outbox is
    /// discarded — every message this event produced was already
    /// delivered (or accounted dropped) in the life that logged it.
    pub fn replay(&mut self, rec: &WalRecord) {
        self.apply_record(rec);
        self.outbox.clear();
    }

    /// Drain the messages the last apply produced.
    pub fn take_outbox(&mut self) -> Vec<Outbound> {
        std::mem::take(&mut self.outbox)
    }

    /// Rebuild the local ring replica from the sorted membership,
    /// exactly like the simulator's builder: the lowest site bootstraps,
    /// the rest join ascending, then full stabilization. Every node
    /// derives the identical ring, and `Lp` follows the membership count
    /// (the `SizeEstimation::Exact` policy).
    pub(crate) fn rebuild_ring(&mut self) {
        let mut ring = Ring::new();
        let sites: Vec<SiteId> = self.members.keys().copied().collect();
        let ids: Vec<Id> = sites.iter().map(|s| chord_id_for(self.seed, *s)).collect();
        ring.bootstrap(ids[0], sites[0].0 as usize);
        for (k, s) in sites.iter().enumerate().skip(1) {
            ring.join(ids[0], ids[k], s.0 as usize).expect("replica join");
        }
        ring.stabilize_all();
        self.ring = ring;
        // `Lp` is clamped against the *ever-joined* count (live members
        // plus permanent deaths), so it grows as members join but never
        // shrinks when one dies. The simulator re-clamps on the live
        // count and runs the §IV-A.2 splitting–merging migration; the
        // daemon's supported regime is stable-`Lp`, so after a permanent
        // loss it keeps the finer granularity instead. Both inputs are
        // in the canonical state, so live nodes and snapshot-recovered
        // ones derive the same value and routing stays agreed.
        self.lp = self
            .group
            .scheme
            .lp_clamped(self.ring.len() + self.dead.len(), self.group.l_min);
    }

    fn my_chord_id(&self) -> Id {
        chord_id_for(self.seed, self.site)
    }

    fn site_of_chord(&self, id: &Id) -> SiteId {
        SiteId(self.ring.app_index_of(id).expect("ring member") as u32)
    }

    // ------------------------------------------------------------------
    // Protocol plane (ported from `NetWorld::handle`)
    // ------------------------------------------------------------------

    fn on_protocol(&mut self, sender: SiteId, wire: &Wire) {
        self.received += 1;
        if wire.seq != 0 && !self.seen.insert((sender.0, wire.seq)) {
            self.anomalies.duplicates_suppressed += 1;
            return;
        }
        self.handle_msg(sender, wire.msg.clone());
    }

    fn handle_msg(&mut self, sender: SiteId, msg: Msg) {
        match msg {
            Msg::SetTo { updates } => {
                let mut touched = Vec::with_capacity(updates.len());
                for (o, arrived, link) in updates {
                    if self.iop.set_to(o, arrived, link) {
                        touched.push((o, arrived));
                    } else {
                        self.anomalies.dangling_iop_updates += 1;
                    }
                }
                self.replicate_iop(&touched);
            }
            Msg::SetFrom { updates } => {
                let mut touched = Vec::with_capacity(updates.len());
                for (o, arrived, link) in updates {
                    if self.iop.set_from(o, arrived, link) {
                        touched.push((o, arrived));
                    } else {
                        self.anomalies.dangling_iop_updates += 1;
                    }
                }
                self.replicate_iop(&touched);
            }
            Msg::GroupIndex { prefix, site, members } => {
                self.handle_group_index(prefix, site, members);
            }
            // Individual mode, triangle delegation and split/merge
            // migration are simulator-only paths (they never trigger in
            // the stable-`Lp`, under-threshold regime the daemon
            // supports); receiving one means the regime was violated.
            Msg::Arrival { .. } | Msg::Delegate { .. } | Msg::Migrate { .. } => {
                self.unsupported += 1;
            }
            Msg::Ack { .. } => self.unsupported += 1,
            // ---------------------------------------------- replication
            // (mirrors `NetWorld::handle`'s Repl* arms)
            Msg::ReplIop { primary, updates } => {
                let store = self.replica_iop.entry(primary).or_default();
                for (o, rec) in updates {
                    store.upsert_record(o, rec);
                }
            }
            Msg::ReplShard { primary, prefix, entries, delegated } => {
                let gw = self.replica_gateway.entry(primary).or_default();
                match prefix {
                    Some(p) => {
                        if entries.is_empty() && !delegated {
                            gw.prefixes.remove(&p);
                        } else {
                            let shard = gw.shard_mut(p);
                            *shard = PrefixIndex::new();
                            shard.delegated = delegated;
                            for (o, e) in entries {
                                shard.upsert(o, e);
                            }
                        }
                    }
                    None => {
                        gw.objects = entries.into_iter().collect();
                    }
                }
            }
            Msg::ReplDigest { primary, digest } => {
                if Id::hash(&self.replica_state_bytes(primary)) != digest {
                    self.dispatch(sender, 1, Msg::ReplSyncReq { primary });
                }
            }
            Msg::ReplSyncReq { primary } => {
                debug_assert_eq!(primary, self.site, "sync request misrouted");
                let state = self.store_state_bytes();
                self.dispatch(sender, 1, Msg::ReplState { primary, state });
            }
            Msg::ReplState { primary, state } => {
                // Network data: a malformed state is counted, not fatal.
                let mut bytes = peertrack::bytebuf::Bytes::from(state);
                match (
                    peertrack::codec::get_state_iop(&mut bytes),
                    peertrack::codec::get_state_gateway(&mut bytes),
                ) {
                    (Ok(iop), Ok(gw)) => {
                        self.replica_iop.insert(primary, iop);
                        self.replica_gateway.insert(primary, gw);
                    }
                    _ => self.unsupported += 1,
                }
            }
            Msg::ReplIopPatch { primary, set_to, set_from } => {
                let store = self.replica_iop.entry(primary).or_default();
                for (o, arrived, link) in set_to {
                    let mut rec = store
                        .record_at(o, arrived)
                        .copied()
                        .unwrap_or(IopRecord { arrived, from: None, to: None });
                    rec.to = Some(link);
                    store.upsert_record(o, rec);
                }
                for (o, arrived, from_link) in set_from {
                    let mut rec = store
                        .record_at(o, arrived)
                        .copied()
                        .unwrap_or(IopRecord { arrived, from: None, to: None });
                    rec.from = from_link;
                    store.upsert_record(o, rec);
                }
            }
        }
    }

    /// Deliver a protocol message: self-sends are handled inline and
    /// uncharged; networked sends are sequenced, charged the model cost
    /// and counted sent — both exactly as `NetWorld::dispatch` — then
    /// queued on the outbox for the engine (live) or dropped (replay).
    fn dispatch(&mut self, to: SiteId, hops: u32, msg: Msg) {
        if to == self.site {
            self.handle_msg(self.site, msg);
            return;
        }
        // An IOP update aimed at a permanently failed site is repaired
        // onto the holders of its replica repository instead of being
        // dropped on the floor (replication mode only).
        if self.replicas > 1
            && self.dead.contains(&to)
            && matches!(msg, Msg::SetTo { .. } | Msg::SetFrom { .. })
        {
            self.redirect_to_replicas(to, msg);
            return;
        }
        let class = msg.class();
        let bytes = msg.wire_size();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.metrics.record(class, bytes, hops);
        if !self.members.contains_key(&to) {
            self.anomalies.dropped_to_dead += 1;
            return;
        }
        self.sent += 1;
        self.outbox.push(Outbound { to, hops, wire: Wire { seq, msg } });
    }

    /// Ported `NetWorld::handle_group_index` (the Fig. 5 `index`
    /// algorithm) against this node's local shard slice.
    fn handle_group_index(
        &mut self,
        prefix: Prefix,
        site: SiteId,
        members: Vec<(ObjectId, SimTime)>,
    ) {
        let unknown: Vec<ObjectId> = {
            let shard = self.gateway.shard_mut(prefix);
            members.iter().map(|&(o, _)| o).filter(|o| shard.get(o).is_none()).collect()
        };
        if !unknown.is_empty() {
            let missing: HashSet<ObjectId> = unknown.into_iter().collect();
            self.check_refresh_unneeded(prefix, &missing);
        }

        let mut m2: BTreeMap<SiteId, Vec<(ObjectId, SimTime, Link)>> = BTreeMap::new();
        let mut m3: Vec<(ObjectId, SimTime, Option<Link>)> = Vec::with_capacity(members.len());
        {
            let shard = self.gateway.shard_mut(prefix);
            for &(o, t) in &members {
                let prev = shard.get(&o).copied();
                if let Some(p) = prev {
                    if p.time > t {
                        self.anomalies.out_of_order_arrivals += 1;
                        continue;
                    }
                }
                shard.upsert(o, IndexEntry { site, time: t, prev: prev.map(|p| p.link()) });
                let new_link = Link { site, time: t };
                if let Some(p) = prev {
                    m2.entry(p.site).or_default().push((o, p.time, new_link));
                }
                m3.push((o, t, prev.map(|p| p.link())));
            }
        }
        self.hosted.insert(prefix);

        for (dest, updates) in m2 {
            self.dispatch(dest, 1, Msg::SetTo { updates });
        }
        if !m3.is_empty() {
            self.dispatch(site, 1, Msg::SetFrom { updates: m3 });
        }
        self.maybe_delegate(prefix);
        self.replicate_shard(prefix);
    }

    /// The Fig. 5 refresh walk, reduced to its in-regime form: with a
    /// stable `Lp` at `Lmin`, no delegation and no split/merge, the
    /// ascent never iterates and no descent child is ever hosted, so
    /// every probe is a free existence check (the simulator charges
    /// nothing either, `count_existence_checks = false`). If a probe
    /// *would* find a hosted prefix, a real entry-moving fetch RPC would
    /// be required — the daemon doesn't implement it, and counts the
    /// situation instead so parity tests fail loudly rather than drift.
    fn check_refresh_unneeded(&mut self, prefix: Prefix, missing: &HashSet<ObjectId>) {
        let mut l = prefix.len();
        while l > self.group.l_min {
            l -= 1;
            if self.hosted.contains(&prefix.truncate(l)) {
                self.unsupported += 1;
            }
        }
        if prefix.len() < ids::prefix::MAX_PREFIX_BITS {
            for one in [false, true] {
                let child = prefix.child(one);
                if missing.iter().any(|o| child.matches(&o.id()))
                    && self.hosted.contains(&child)
                {
                    self.unsupported += 1;
                }
            }
        }
    }

    /// Delegation threshold check (Fig. 5 `update_index` lines 2–4).
    /// Crossing it off-sim is unsupported — counted, not silently
    /// skipped.
    fn maybe_delegate(&mut self, prefix: Prefix) {
        let Some(threshold) = self.group.delegate_threshold else { return };
        if prefix.len() >= ids::prefix::MAX_PREFIX_BITS {
            return;
        }
        if self.gateway.shard_mut(prefix).len() > threshold {
            self.unsupported += 1;
        }
    }

    // ------------------------------------------------------------------
    // Capture path (ported from `NetWorld::capture_now` / `index_batch`)
    // ------------------------------------------------------------------

    fn on_capture(&mut self, at: SimTime, objects: &[ObjectId]) {
        for &o in objects {
            self.iop.capture(o, at);
        }
        let capture_keys: Vec<(ObjectId, SimTime)> =
            objects.iter().map(|&o| (o, at)).collect();
        self.replicate_iop(&capture_keys);
        for &o in objects {
            match self.window.push(o, at) {
                // Timers are the driver's job off-sim (explicit Flush).
                WindowEvent::ArmTimer | WindowEvent::Buffered => {}
                WindowEvent::FlushByCount(batch) => self.index_batch(batch),
            }
        }
    }

    fn on_flush(&mut self, now: SimTime) {
        if let Some(batch) = self.window.flush(now) {
            self.index_batch(batch);
            // Anti-entropy: with no off-sim timers, each flush doubles
            // as the write-burst boundary — follow it with a digest of
            // this primary's stores so a replica that missed a fan-out
            // frame pulls the full state ([`Msg::ReplSyncReq`]).
            if self.replicas > 1 {
                let digest = Id::hash(&self.store_state_bytes());
                let primary = self.site;
                for h in self.replica_peer_sites() {
                    self.dispatch(h, 1, Msg::ReplDigest { primary, digest });
                }
            }
        }
    }

    /// Route each group to its gateway. The owner and hop count come
    /// from the *local* replica — identical, on a converged membership,
    /// to what the networked iterative lookup would return, and usable
    /// during replay where no peer exists to ask.
    fn index_batch(&mut self, batch: WindowBatch) {
        let me = self.my_chord_id();
        for group in group_batch(&batch.observations, self.lp) {
            let key = group.prefix.gateway_id();
            let Ok(r) = self.ring.lookup(me, key) else {
                self.unsupported += 1;
                continue;
            };
            let owner = self.site_of_chord(&r.owner);
            let msg =
                Msg::GroupIndex { prefix: group.prefix, site: self.site, members: group.members };
            self.dispatch(owner, r.hops as u32, msg);
        }
    }

    // ------------------------------------------------------------------
    // K-successor replication (ported from `NetWorld`'s replication
    // engine; DESIGN.md §13). Every entry point below no-ops when
    // `replicas <= 1`, so the default path sends nothing and the state
    // encoding stays byte-identical to the pre-replication node.
    // ------------------------------------------------------------------

    /// This site's replica set: its K−1 live ring successors, in ring
    /// order. Empty when replication is off.
    fn replica_peer_sites(&self) -> Vec<SiteId> {
        if self.replicas <= 1 {
            return Vec::new();
        }
        // `successors_of` of a member id starts with the member itself.
        self.ring
            .successors_of(&self.my_chord_id(), self.replicas)
            .into_iter()
            .skip(1)
            .filter_map(|id| self.ring.app_index_of(&id))
            .map(|i| SiteId(i as u32))
            .filter(|&s| s != self.site)
            .collect()
    }

    /// The holders of a **dead** site's replica copies: the first K−1
    /// nodes clockwise from its ring id, on the post-removal ring —
    /// exactly its successor set at the moment of death (absent further
    /// churn). Patches and read probes go only to these; touching a
    /// non-holder would plant partial records that corrupt trace walks.
    pub(crate) fn holders_of_dead(&self, dead: SiteId) -> Vec<SiteId> {
        if self.replicas <= 1 {
            return Vec::new();
        }
        let key = chord_id_for(self.seed, dead);
        self.ring
            .successors_of(&key, self.replicas - 1)
            .into_iter()
            .filter_map(|id| self.ring.app_index_of(&id))
            .map(|i| SiteId(i as u32))
            .collect()
    }

    /// Canonical byte encoding of this site's primary stores (IOP then
    /// gateway) — the unit digests and full-state sync hash and ship.
    fn store_state_bytes(&self) -> Vec<u8> {
        let mut buf = ByteBuf::new();
        codec::put_state_iop(&mut buf, &self.iop);
        codec::put_state_gateway(&mut buf, &self.gateway);
        buf.freeze().as_slice().to_vec()
    }

    /// Canonical encoding of this node's replica copy of `primary`'s
    /// stores (empty stores when no copy exists yet).
    fn replica_state_bytes(&self, primary: SiteId) -> Vec<u8> {
        let empty_iop = IopStore::new();
        let empty_gw = GatewayStore::new();
        let iop = self.replica_iop.get(&primary).unwrap_or(&empty_iop);
        let gw = self.replica_gateway.get(&primary).unwrap_or(&empty_gw);
        let mut buf = ByteBuf::new();
        codec::put_state_iop(&mut buf, iop);
        codec::put_state_gateway(&mut buf, gw);
        buf.freeze().as_slice().to_vec()
    }

    /// Fan one or more IOP record updates out to the replica set.
    /// `keys` are `(object, arrival time)` record keys; the full
    /// records are read back from the primary store so replicas always
    /// receive the post-update state.
    fn replicate_iop(&mut self, keys: &[(ObjectId, SimTime)]) {
        if self.replicas <= 1 || keys.is_empty() {
            return;
        }
        let updates: Vec<(ObjectId, IopRecord)> = keys
            .iter()
            .filter_map(|&(o, t)| self.iop.record_at(o, t).map(|r| (o, *r)))
            .collect();
        if updates.is_empty() {
            return;
        }
        let primary = self.site;
        for h in self.replica_peer_sites() {
            self.dispatch(h, 1, Msg::ReplIop { primary, updates: updates.clone() });
        }
    }

    /// Ship the full current content of one gateway shard to the
    /// replica set. Full-shard replace semantics let removals propagate
    /// without tombstones: an empty shard drops the replica copy.
    fn replicate_shard(&mut self, prefix: Prefix) {
        if self.replicas <= 1 {
            return;
        }
        let (mut entries, delegated): (Vec<(ObjectId, IndexEntry)>, bool) =
            match self.gateway.prefixes.get(&prefix) {
                Some(shard) => {
                    (shard.entries.iter().map(|(o, e)| (*o, *e)).collect(), shard.delegated)
                }
                None => (Vec::new(), false),
            };
        // Sorted: message contents feed the canonical encoding at the
        // replica and must be hasher-independent.
        entries.sort_by_key(|(o, _)| *o);
        let primary = self.site;
        for h in self.replica_peer_sites() {
            let msg =
                Msg::ReplShard { primary, prefix: Some(prefix), entries: entries.clone(), delegated };
            self.dispatch(h, 1, msg);
        }
    }

    /// Redirect an M2/M3 IOP update whose destination is permanently
    /// dead to the live holders of that site's replica repository, as a
    /// [`Msg::ReplIopPatch`]. With no surviving holder the update is
    /// lost and counted, as before.
    fn redirect_to_replicas(&mut self, dead: SiteId, msg: Msg) {
        let holders = self.holders_of_dead(dead);
        if holders.is_empty() {
            self.anomalies.dropped_to_dead += 1;
            return;
        }
        let (set_to, set_from) = match msg {
            Msg::SetTo { updates } => (updates, Vec::new()),
            Msg::SetFrom { updates } => (Vec::new(), updates),
            other => unreachable!("only IOP updates are redirected, got {other:?}"),
        };
        for h in holders {
            let patch = Msg::ReplIopPatch {
                primary: dead,
                set_to: set_to.clone(),
                set_from: set_from.clone(),
            };
            self.dispatch(h, 1, patch);
        }
    }

    /// Apply a kill-forever declaration: drop the member, rebuild the
    /// ring, and — with replication on — fail its key ranges over. The
    /// heir (the dead id's first live successor) merges its replica
    /// copy of the dead gateway into its primary stores; everyone drops
    /// the now-stale gateway copies (the **IOP** copies stay — they are
    /// the read-fallback data); placement is re-established on the
    /// shrunken ring.
    fn on_dead(&mut self, site: SiteId) {
        if site == self.site || self.members.remove(&site).is_none() {
            return;
        }
        self.dead.insert(site);
        self.rebuild_ring();
        if self.replicas <= 1 {
            return;
        }
        let dead_chord = chord_id_for(self.seed, site);
        if self.ring.successor_of(&dead_chord) == Some(self.my_chord_id()) {
            self.promote_dead_primary(site);
        }
        self.replica_gateway.remove(&site);
        self.replica_maintenance();
    }

    /// Failover merge at the heir (mirrors the simulator's
    /// `promote_dead_primary`): fold the replica copy of the dead
    /// site's *gateway* stores into this node's primary stores, keeping
    /// whichever entry is newer where both exist.
    fn promote_dead_primary(&mut self, dead: SiteId) {
        let Some(gw) = self.replica_gateway.remove(&dead) else { return };
        let mut objs: Vec<(ObjectId, IndexEntry)> = gw.objects.into_iter().collect();
        objs.sort_by_key(|(o, _)| *o);
        for (o, e) in objs {
            match self.gateway.objects.get(&o) {
                // A racing index update here already holds a newer
                // visit — keep it.
                Some(ex) if ex.time >= e.time => {}
                _ => {
                    self.gateway.objects.insert(o, e);
                }
            }
        }
        let mut prefixes: Vec<(Prefix, PrefixIndex)> = gw.prefixes.into_iter().collect();
        prefixes.sort_by_key(|(p, _)| *p);
        for (p, shard) in prefixes {
            let mut es: Vec<(ObjectId, IndexEntry)> =
                shard.entries.iter().map(|(o, e)| (*o, *e)).collect();
            es.sort_by_key(|(o, _)| *o);
            let dst = self.gateway.shard_mut(p);
            dst.delegated |= shard.delegated;
            for (o, e) in es {
                match dst.get(&o) {
                    Some(ex) if ex.time >= e.time => {}
                    _ => dst.upsert(o, e),
                }
            }
            self.hosted.insert(p);
        }
    }

    /// Re-establish the placement invariant after a membership change:
    /// drop copies of *live* primaries this node no longer succeeds
    /// (dead primaries' copies stay — they are the read fallback), and
    /// push this node's own full store state to its current holders.
    fn replica_maintenance(&mut self) {
        if self.replicas <= 1 {
            return;
        }
        let held: Vec<SiteId> = self
            .replica_iop
            .keys()
            .chain(self.replica_gateway.keys())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for primary in held {
            if self.dead.contains(&primary) || !self.members.contains_key(&primary) {
                continue;
            }
            let holder_chain = self.ring.successors_of(&chord_id_for(self.seed, primary), self.replicas);
            let me = self.my_chord_id();
            if !holder_chain.iter().skip(1).any(|id| *id == me) {
                self.replica_iop.remove(&primary);
                self.replica_gateway.remove(&primary);
            }
        }
        let state = self.store_state_bytes();
        let primary = self.site;
        for h in self.replica_peer_sites() {
            self.dispatch(h, 1, Msg::ReplState { primary, state: state.clone() });
        }
    }
}

/// Per-connection inbox cap: decoded frames awaiting processing. With
/// the bounded read chunk in [`transport::nio`] this caps per-connection
/// memory while a pipelining client keeps the loop busy across wakeups;
/// once full, the connection simply is not read until the loop catches
/// up (TCP flow control pushes back on the client).
pub const INBOX_CAP: usize = 256;

/// Bounded per-connection outbox: once this many response bytes are
/// queued and not yet accepted by the kernel, the connection is
/// *parked* — no further reads or request processing — until the
/// client drains its responses. Backpressure, never OOM, never a
/// dropped response.
pub const OUTBOX_LIMIT_BYTES: usize = 256 * 1024;

/// Deadline for one peer RPC. The engine keeps pumping while it waits,
/// so this only bounds how long a query stalls on an unreachable peer.
const RPC_DEADLINE: Duration = Duration::from_secs(10);

/// Idle strategy: spin-yield this many empty wakeups, then sleep.
const IDLE_SPINS: u32 = 64;
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Which pump is running (see [`Engine::pump`]). `Nested` is the pump
/// inside an RPC wait: it defers anything that would start another
/// query or stop the node, which is what bounds RPC recursion at 1.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Main,
    Nested,
}

/// What `handle_frame` did with a frame.
enum Action {
    Consumed,
    /// Put it back — this frame class cannot run in the current mode.
    Deferred(Frame),
}

/// One accepted connection: the nonblocking socket plus the decoded
/// frames waiting their turn.
struct EConn {
    conn: NbConn,
    inbox: VecDeque<Frame>,
    /// True while over [`OUTBOX_LIMIT_BYTES`]: reads and processing are
    /// suspended, only flushes run.
    parked: bool,
}

struct Engine {
    addr: SocketAddr,
    listener: NbListener,
    /// Accepted connections, slab-style: indices are stable (slots are
    /// reused, never compacted) because staged replies and `busy_conn`
    /// refer to them across nested pumps.
    econns: Vec<Option<EConn>>,
    conns: ConnCache,
    recorder: Recorder,
    core: Core,
    /// Durable storage; `None` = in-memory node (`log_apply` degrades
    /// to plain apply).
    data: Option<DataDir>,
    snapshot_every: u64,
    records_since_snapshot: u64,
    /// True when the current batch holds WAL records whose fsync has
    /// not happened yet (cleared by `commit`).
    appended_in_batch: bool,
    /// Responses produced this batch in production order, held back
    /// until the batch fsync: ack-after-fsync is this buffer.
    staged: Vec<(usize, Vec<u8>)>,
    /// Connection whose query is suspended mid-RPC: nested pumps skip
    /// its inbox so its responses stay in request order.
    busy_conn: Option<usize>,
    /// `Some(clean)` once Shutdown (`true`) or Crash (`false`) ran.
    stop: Option<bool>,
    parks: u64,
    /// Locate-answer cache (DESIGN.md §15). Engine-side on purpose:
    /// it is volatile read-path state, excluded — like the recorder —
    /// from the canonical state encoding and from snapshots, so a
    /// restarted node rebuilds it cold and `StateDump` comparisons
    /// never see it. `None` = caching disabled (the default).
    locate_cache: Option<LocateCache<Link>>,
    /// Served-locate attribution for queries this node originated:
    /// answering site → count. This is the simulator's per-site
    /// `query_load` tally sliced by origin; harnesses merge every
    /// node's slice ([`Frame::QueryLoad`]) to recover the global view.
    query_load: BTreeMap<SiteId, u64>,
    /// WAN region topology (DESIGN.md §17); `None` = flat cluster.
    geo: Option<geo::Topology>,
    /// Severed region pairs, normalized `(min, max)`. Network-plane
    /// state like the recorder: volatile, engine-side, never logged.
    severed: HashSet<(u16, u16)>,
    /// Protocol frames parked at this sender because their destination
    /// lies across a severed pair, in park order. Their `sent` count
    /// was undone at park time so the harness's sent/received balance
    /// holds while a cut is open; release re-counts and re-sends.
    parked_out: Vec<Outbound>,
}

impl Engine {
    /// Build a node engine: recover state from the data dir (if any),
    /// correct the self-address on file, then join through the
    /// bootstrap. Runs on the spawning thread so recovery errors fail
    /// `Node::spawn` instead of killing a detached thread.
    fn new(cfg: NodeConfig, addr: SocketAddr, listener: NbListener) -> io::Result<Engine> {
        if cfg.locate_cache == Some(0) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "locate cache capacity must be at least 1",
            ));
        }
        let mut core = Core::new(cfg.site, cfg.seed, cfg.group, addr);
        core.replicas = cfg.replicas.max(1);
        let mut data = None;
        if let Some(dir) = &cfg.data_dir {
            let (d, recovery) = DataDir::open(dir, cfg.fsync)?;
            if let Some((_, body)) = &recovery.snapshot {
                core = Core::from_snapshot(cfg.site, cfg.seed, cfg.group, body)?;
                // The replication factor is config, not logged state —
                // it must be restored before the tail replays, or
                // recovered fan-out accounting diverges from the live
                // run.
                core.replicas = cfg.replicas.max(1);
            }
            for entry in &recovery.tail {
                let rec = WalRecord::decode(&entry.payload).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("WAL record {} undecodable: {e}", entry.lsn),
                    )
                })?;
                core.replay(&rec);
            }
            data = Some(d);
        }
        let mut engine = Engine {
            addr,
            listener,
            econns: Vec::new(),
            conns: ConnCache::new(Backoff::default()),
            recorder: Recorder::new(),
            core,
            data,
            snapshot_every: cfg.snapshot_every.max(1),
            records_since_snapshot: 0,
            appended_in_batch: false,
            staged: Vec::new(),
            busy_conn: None,
            stop: None,
            parks: 0,
            locate_cache: cfg.locate_cache.map(LocateCache::new),
            query_load: BTreeMap::new(),
            geo: cfg.geo,
            severed: HashSet::new(),
            parked_out: Vec::new(),
        };
        // A recovered core remembers the listener address of its
        // previous life; this life bound a fresh port.
        if engine.core.members.get(&cfg.site) != Some(&addr) {
            engine.log_apply(WalRecord::Member { site: cfg.site, addr: addr.to_string() });
        }
        if let Some(bootstrap) = cfg.bootstrap {
            engine.join_via(bootstrap);
        }
        // Make the pre-loop appends durable before serving traffic.
        engine.commit();
        Ok(engine)
    }

    /// The single live write path: log the event (group-commit append —
    /// the fsync is deferred to this batch's `commit`), apply it,
    /// deliver what it produced. A WAL append failure is fatal by
    /// design — running on past an unlogged mutation would make the
    /// next recovery silently diverge.
    fn log_apply(&mut self, rec: WalRecord) {
        if let Some(d) = self.data.as_mut() {
            d.append_deferred(&rec.encode())
                .expect("WAL append failed; refusing to mutate unlogged state");
            self.appended_in_batch = true;
            self.records_since_snapshot += 1;
        }
        self.core.apply_record(&rec);
        self.pump_outbox();
    }

    /// Deliver everything the core queued. On a send failure the core
    /// has already counted the message sent — undo that and count the
    /// drop, keeping cluster-wide sent/received sums balanced (which is
    /// what the harness's quiesce watches). With a topology, frames
    /// whose destination lies across a severed region pair are parked
    /// instead (sent-count undone the same way, so a cut cluster still
    /// quiesces); [`Engine::release_parked`] re-sends them at heal.
    fn pump_outbox(&mut self) {
        for out in self.core.take_outbox() {
            if let Some(pair) = self.severed_pair_of(out.to) {
                debug_assert!(self.severed.contains(&pair));
                self.core.sent -= 1;
                self.parked_out.push(out);
                continue;
            }
            self.send_outbound(out);
        }
    }

    /// The normalized region pair between this node and `to`, if (and
    /// only if) that pair is currently severed.
    fn severed_pair_of(&self, to: SiteId) -> Option<(u16, u16)> {
        let topo = self.geo.as_ref()?;
        let a = topo.region_of(self.core.site.0 as usize);
        let b = topo.region_of(to.0 as usize);
        let pair = (a.min(b), a.max(b));
        self.severed.contains(&pair).then_some(pair)
    }

    /// Encode and socket-write one core-sequenced protocol message,
    /// undoing its `sent` count on failure.
    fn send_outbound(&mut self, out: Outbound) {
        let Some(&peer) = self.core.members.get(&out.to) else {
            self.core.sent -= 1;
            self.core.anomalies.dropped_to_dead += 1;
            return;
        };
        self.inject_dial_delay(out.to, peer);
        let frame = Frame::Protocol {
            sender: self.core.site,
            hops: out.hops,
            sent_us: wall_us(),
            wire: out.wire,
        };
        if self.conns.send(peer, &frame.encode()).is_err() {
            self.core.sent -= 1;
            self.core.anomalies.dropped_to_dead += 1;
        }
    }

    /// Re-send every frame parked on the region pair `(a, b)`, in the
    /// order they were parked — per-destination sequence order is
    /// preserved, so receivers see the frames as merely delayed.
    fn release_parked(&mut self, a: u16, b: u16) {
        let pair = (a.min(b), a.max(b));
        let parked = std::mem::take(&mut self.parked_out);
        for out in parked {
            let out_pair = {
                let topo = self.geo.as_ref().expect("parked frames require a topology");
                let ra = topo.region_of(self.core.site.0 as usize);
                let rb = topo.region_of(out.to.0 as usize);
                (ra.min(rb), ra.max(rb))
            };
            if out_pair == pair {
                self.core.sent += 1;
                self.send_outbound(out);
            } else {
                self.parked_out.push(out);
            }
        }
    }

    /// Seed the connection cache with the topology's base latency for
    /// `site` as a one-time dial delay (test builds honor it; release
    /// builds carry the table but never sleep). Re-applied lazily on
    /// every send so a peer's post-restart address inherits the delay.
    fn inject_dial_delay(&mut self, site: SiteId, addr: SocketAddr) {
        if let Some(topo) = &self.geo {
            let us = topo.wire_us_sites(self.core.site.0 as usize, site.0 as usize, 0);
            if us > 0 && self.conns.dial_delay(addr).is_zero() {
                self.conns.set_dial_delay(addr, Duration::from_micros(us));
            }
        }
    }

    fn install_snapshot(&mut self) {
        let body = self.core.snapshot_body();
        if let Some(d) = self.data.as_mut() {
            d.install_snapshot(&body)
                .expect("snapshot install failed; refusing to run with a broken log");
        }
        self.records_since_snapshot = 0;
    }

    /// Join the cluster through an existing member (blocking RPC).
    fn join_via(&mut self, bootstrap: SocketAddr) {
        let req = Frame::JoinReq { site: self.core.site, addr: self.addr.to_string() };
        match self.conns.request(bootstrap, &req.encode()).map_err(io::Error::other).and_then(
            |raw| Frame::decode(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        ) {
            Ok(Frame::JoinResp { peers }) => {
                for (site, addr) in peers {
                    if addr.parse::<SocketAddr>().is_ok() {
                        self.log_apply(WalRecord::Member { site, addr });
                    }
                }
            }
            _ => {
                // Leave membership as-is; the bootstrap's PeerJoined
                // broadcast (or a retried join by the operator) repairs
                // it. Count the oddity so tests notice.
                self.core.unsupported += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    fn run(mut self) -> NodeReport {
        let mut idle = 0u32;
        while self.stop.is_none() {
            if self.pump(Mode::Main) {
                idle = 0;
            } else {
                // Adaptive idle: no poll(2) without libc, so spin-yield
                // briefly (keeps RPC round trips fast under load), then
                // sleep in short slices (keeps an idle 8-node cluster
                // cheap).
                idle += 1;
                if idle < IDLE_SPINS {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(IDLE_SLEEP);
                }
            }
            self.reap();
        }
        if self.stop == Some(true) && self.data.is_some() {
            // Orderly shutdown: fold the whole log into one snapshot so
            // the next start replays nothing, and leave the WAL synced
            // and empty.
            self.install_snapshot();
        }
        // Drain pending responses — the final ack among them — with a
        // deadline so a vanished client cannot wedge the exit.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.econns.iter().flatten().any(|e| e.conn.queued_bytes() > 0)
            && Instant::now() < deadline
        {
            for ec in self.econns.iter_mut().flatten() {
                ec.conn.try_flush();
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for ec in self.econns.iter_mut().flatten() {
            ec.conn.close();
        }
        self.conns.close_all();
        NodeReport {
            site: self.core.site,
            metrics: self.core.metrics,
            anomalies: self.core.anomalies,
            unsupported: self.core.unsupported,
            recorder: self.recorder,
            sent: self.core.sent,
            received: self.core.received,
            backpressure_parks: self.parks,
        }
    }

    // ------------------------------------------------------------------
    // The event loop: intake → process → commit → flush
    // ------------------------------------------------------------------

    /// One poll wakeup. Returns `true` if anything at all happened
    /// (the idle strategy watches this). `Nested` pumps run inside an
    /// RPC wait — same structure, restricted processing.
    fn pump(&mut self, mode: Mode) -> bool {
        let mut activity = self.intake();
        if self.stop.is_none() {
            activity |= self.process(mode);
        }
        self.commit();
        activity | self.flush_writes()
    }

    /// Accept pending connections and read every readable socket,
    /// decoding complete frames into per-connection inboxes.
    fn intake(&mut self) -> bool {
        let mut activity = false;
        for (stream, peer) in self.listener.accept_ready() {
            let Ok(conn) = NbConn::new(stream, peer) else { continue };
            let ec = EConn { conn, inbox: VecDeque::new(), parked: false };
            match self.econns.iter_mut().find(|s| s.is_none()) {
                Some(slot) => *slot = Some(ec),
                None => self.econns.push(Some(ec)),
            }
            activity = true;
        }
        for idx in 0..self.econns.len() {
            let Some(ec) = self.econns[idx].as_mut() else { continue };
            if ec.parked || ec.conn.is_dead() || ec.inbox.len() >= INBOX_CAP {
                continue;
            }
            if ec.conn.read_ready() {
                activity = true;
            }
            while ec.inbox.len() < INBOX_CAP {
                let Some(raw) = ec.conn.next_frame() else { break };
                match Frame::decode(&raw) {
                    Ok(f) => ec.inbox.push_back(f),
                    Err(ProtoError::Codec(_)) | Err(_) => self.core.unsupported += 1,
                }
            }
        }
        activity
    }

    /// Handle queued frames, strictly serially, in arrival order per
    /// connection. Parked connections and — in nested mode — the
    /// querying connection are skipped; a deferred frame stops its
    /// connection's queue (order preserved) without blocking others.
    fn process(&mut self, mode: Mode) -> bool {
        let mut activity = false;
        let n = self.econns.len();
        'conns: for idx in 0..n {
            if self.stop.is_some() {
                break;
            }
            if self.busy_conn == Some(idx) {
                continue;
            }
            loop {
                if self.stop.is_some() {
                    break 'conns;
                }
                let frame = {
                    let Some(ec) = self.econns[idx].as_mut() else { continue 'conns };
                    if ec.parked {
                        continue 'conns;
                    }
                    match ec.inbox.pop_front() {
                        Some(f) => f,
                        None => break,
                    }
                };
                match self.handle_frame(idx, frame, mode) {
                    Action::Consumed => activity = true,
                    Action::Deferred(frame) => {
                        if let Some(ec) = self.econns[idx].as_mut() {
                            ec.inbox.push_front(frame);
                        }
                        break;
                    }
                }
            }
        }
        activity
    }

    /// The group-commit point: one fsync covering every record this
    /// batch appended, then — and never before — release the batch's
    /// staged responses to their connections. A crash stop releases
    /// without the fsync (process-crash model: the `write(2)` already
    /// happened, and `Frame::Crash` simulates `kill -9`, not power
    /// loss). Snapshot cadence also lands here, after the sync.
    fn commit(&mut self) {
        if self.appended_in_batch {
            let crashing = self.stop == Some(false);
            if !crashing {
                if let Some(d) = self.data.as_mut() {
                    d.sync().expect("WAL fsync failed; refusing to ack unsynced records");
                }
            }
            self.appended_in_batch = false;
            if !crashing
                && self.stop.is_none()
                && self.data.is_some()
                && self.records_since_snapshot >= self.snapshot_every
            {
                self.install_snapshot();
            }
        }
        for (idx, bytes) in std::mem::take(&mut self.staged) {
            if let Some(ec) = self.econns[idx].as_mut() {
                ec.conn.queue_frame(&bytes);
            }
        }
    }

    /// Write as much buffered output as the kernel accepts, and manage
    /// backpressure parking around [`OUTBOX_LIMIT_BYTES`].
    fn flush_writes(&mut self) -> bool {
        let mut activity = false;
        for ec in self.econns.iter_mut().flatten() {
            let before = ec.conn.queued_bytes();
            if before > 0 {
                ec.conn.try_flush();
                if ec.conn.queued_bytes() < before {
                    activity = true;
                }
            }
            let over = ec.conn.queued_bytes() > OUTBOX_LIMIT_BYTES;
            if over && !ec.parked {
                ec.parked = true;
                self.parks += 1;
            } else if !over && ec.parked {
                ec.parked = false;
                activity = true;
            }
        }
        activity
    }

    /// Drop fully-finished dead connections. Only called between
    /// top-level pumps — never from a nested pump, so slab indices held
    /// across an RPC wait stay valid.
    fn reap(&mut self) {
        for slot in self.econns.iter_mut() {
            if let Some(ec) = slot {
                if ec.conn.is_dead() && ec.inbox.is_empty() {
                    *slot = None;
                }
            }
        }
    }

    /// Stage a response for release at this batch's commit point.
    fn stage(&mut self, idx: usize, frame: Frame) {
        self.staged.push((idx, frame.encode()));
    }

    fn handle_frame(&mut self, idx: usize, frame: Frame, mode: Mode) -> Action {
        // A nested pump serves reads and the protocol plane, but never
        // starts a second query (RPC recursion bound) and never stops
        // the node mid-query.
        if mode == Mode::Nested
            && matches!(
                frame,
                Frame::Locate { .. } | Frame::Trace { .. } | Frame::Shutdown | Frame::Crash
            )
        {
            return Action::Deferred(frame);
        }
        match frame {
            Frame::Protocol { sender, hops: _, sent_us, wire } => {
                self.recorder
                    .record_latency(wire.msg.class(), wall_us().saturating_sub(sent_us));
                // A GroupIndex we absorb rewrites our shard's latest
                // links: drop our own cached answers for those objects
                // up front (revalidation would also catch it — this
                // saves the walk).
                if let Msg::GroupIndex { members, .. } = &wire.msg {
                    if let Some(cache) = self.locate_cache.as_mut() {
                        for &(o, _) in members {
                            cache.invalidate(o);
                        }
                    }
                }
                self.log_apply(WalRecord::Protocol { sender, wire });
            }
            Frame::JoinReq { site, addr } => {
                let reply = self.on_join_req(site, &addr);
                self.stage(idx, reply);
            }
            Frame::PeerJoined { site, addr } => {
                if addr.parse::<SocketAddr>().is_ok() {
                    self.clear_locate_cache();
                    self.log_apply(WalRecord::Member { site, addr });
                }
            }
            Frame::PeerDead { site } => {
                self.clear_locate_cache();
                self.log_apply(WalRecord::Dead { site });
                self.stage(idx, Frame::Ack);
            }
            Frame::JoinResp { .. } => self.core.unsupported += 1,
            Frame::Capture { at, objects } => {
                // The object is here now: whatever link we cached for
                // it elsewhere is stale the moment the record lands.
                if let Some(cache) = self.locate_cache.as_mut() {
                    for &o in &objects {
                        cache.invalidate(o);
                    }
                }
                self.log_apply(WalRecord::Capture { at, objects });
                self.stage(idx, Frame::Ack);
            }
            Frame::Flush { now } => {
                self.log_apply(WalRecord::Flush { now });
                self.stage(idx, Frame::Ack);
            }
            Frame::Locate { object, t } => {
                let started = wall_us();
                self.busy_conn = Some(idx);
                let (answer, cost, complete) = self.locate(object, t);
                self.busy_conn = None;
                self.account_query(&cost, started);
                self.stage(idx, Frame::LocateResp { answer, cost: cost.wire(), complete });
            }
            Frame::Trace { object, t0, t1 } => {
                let started = wall_us();
                self.busy_conn = Some(idx);
                let (path, cost, complete) = self.trace(object, t0, t1);
                self.busy_conn = None;
                self.account_query(&cost, started);
                self.stage(idx, Frame::TraceResp { path, cost: cost.wire(), complete });
            }
            Frame::Status => {
                self.stage(
                    idx,
                    Frame::StatusResp {
                        site: self.core.site,
                        members: self.core.members.len() as u32,
                        sent: self.core.sent,
                        received: self.core.received,
                    },
                );
            }
            Frame::QueryLoad => {
                let loads = self.query_load.iter().map(|(&s, &n)| (s, n)).collect();
                let stats = self.locate_cache.as_ref().map(|c| c.stats()).unwrap_or_default();
                self.stage(
                    idx,
                    Frame::QueryLoadResp { loads, hits: stats.hits, misses: stats.misses },
                );
            }
            Frame::Shutdown => {
                self.stage(idx, Frame::Ack);
                self.stop = Some(true);
            }
            Frame::Crash => {
                // Die like a kill -9 would: ack (so the harness can
                // sequence the fault), then abandon everything volatile.
                // No final snapshot, no WAL sync beyond what earlier
                // batches already committed.
                self.stage(idx, Frame::Ack);
                self.stop = Some(false);
            }
            Frame::StateDump => {
                self.stage(idx, Frame::StateResp(self.core.state_bytes(false)));
            }
            Frame::Resolve { site } => {
                let addr = self.core.members.get(&site).map(|a| a.to_string());
                self.stage(idx, Frame::AddrResp(addr));
            }
            Frame::RegionCut { a, b } => {
                // Network-plane fault, not replicated state: never
                // logged, so state dumps and recovery are untouched.
                if self.geo.is_some() {
                    self.severed.insert((a.min(b), a.max(b)));
                }
                self.stage(idx, Frame::Ack);
            }
            Frame::RegionHeal { a, b } => {
                if self.severed.remove(&(a.min(b), a.max(b))) {
                    self.release_parked(a, b);
                }
                self.stage(idx, Frame::Ack);
            }
            Frame::LookupStep { key } => {
                let me = self.core.my_chord_id();
                let node = self.core.ring.get(&me).expect("self in replica");
                let answer = answer_step(node, &key, |id| self.core.ring.contains(id));
                self.stage(idx, Frame::StepResp(answer));
            }
            Frame::GatewayProbe { object } => {
                let link = self.local_gateway_probe(object);
                self.stage(idx, Frame::LinkResp(link));
            }
            Frame::IopKnows { object } => {
                let knows = self.core.iop.knows(object);
                self.stage(idx, Frame::BoolResp(knows));
            }
            Frame::RecAt { object, time } => {
                let rec = self.core.iop.record_at(object, time).copied();
                self.stage(idx, Frame::RecResp(rec));
            }
            Frame::RecLatestAtOrBefore { object, t } => {
                let rec = self.core.iop.latest_at_or_before(object, t).copied();
                self.stage(idx, Frame::RecResp(rec));
            }
            Frame::RecFirst { object } => {
                let rec = self.core.iop.all(object).first().copied();
                self.stage(idx, Frame::RecResp(rec));
            }
            Frame::RecLatest { object } => {
                let rec = self.core.iop.latest(object).copied();
                self.stage(idx, Frame::RecResp(rec));
            }
            Frame::ReplRecAt { primary, object, time } => {
                let rec = self
                    .core
                    .replica_iop
                    .get(&primary)
                    .and_then(|st| st.record_at(object, time))
                    .copied();
                self.stage(idx, Frame::RecResp(rec));
            }
            // Response frames arriving outside a request context.
            Frame::Ack
            | Frame::LocateResp { .. }
            | Frame::TraceResp { .. }
            | Frame::StatusResp { .. }
            | Frame::StepResp(_)
            | Frame::LinkResp(_)
            | Frame::BoolResp(_)
            | Frame::RecResp(_)
            | Frame::QueryLoadResp { .. }
            | Frame::StateResp(_)
            | Frame::AddrResp(_) => self.core.unsupported += 1,
        }
        Action::Consumed
    }

    fn on_join_req(&mut self, site: SiteId, addr: &str) -> Frame {
        if addr.parse::<SocketAddr>().is_err() {
            self.core.unsupported += 1;
            return Frame::JoinResp { peers: Vec::new() };
        }
        self.clear_locate_cache();
        self.log_apply(WalRecord::Member { site, addr: addr.to_string() });
        // Tell everyone else about the newcomer (fire-and-forget,
        // daemon-plane: not charged, not counted as protocol traffic).
        let others: Vec<SocketAddr> = self
            .core
            .members
            .iter()
            .filter(|(s, _)| **s != self.core.site && **s != site)
            .map(|(_, a)| *a)
            .collect();
        let news = Frame::PeerJoined { site, addr: addr.to_string() }.encode();
        for peer in others {
            let _ = self.conns.send(peer, &news);
        }
        Frame::JoinResp {
            peers: self.core.members.iter().map(|(s, a)| (*s, a.to_string())).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Distributed lookup (origin drives, peers answer)
    // ------------------------------------------------------------------

    /// Iterative Chord lookup over the network. Each hop's routing
    /// decision comes from that node's own replica via
    /// [`Frame::LookupStep`]; the local step is answered in-process.
    /// Returns `None` on transport failure or routing loop.
    fn lookup(&mut self, key: Id) -> Option<LookupResult> {
        let me = self.core.my_chord_id();
        let mut driver = LookupDriver::new(me, key, self.core.ring.len());
        loop {
            match driver.state() {
                LookupState::Ask(node) => {
                    let answer = if node == me {
                        let state = self.core.ring.get(&node).expect("self in replica");
                        answer_step(state, &key, |id| self.core.ring.contains(id))
                    } else {
                        let site = self.core.site_of_chord(&node);
                        match self.rpc(site, &Frame::LookupStep { key }) {
                            Ok(Frame::StepResp(a)) => a,
                            _ => return None,
                        }
                    };
                    driver.answer(answer);
                }
                LookupState::Done(result) => return Some(result),
                LookupState::Failed(_) => return None,
            }
        }
    }

    /// Request/response to a peer's engine. Blocking-style for the
    /// caller, but while the reply is in flight the event loop keeps
    /// pumping in nested mode — which is what lets two nodes query
    /// each other simultaneously without deadlock (each answers the
    /// other's lookup steps from inside its own wait). The stream is
    /// checked out of the cache for the duration so nested sends to
    /// the same peer cannot interleave with the reply bytes.
    fn rpc(&mut self, site: SiteId, req: &Frame) -> io::Result<Frame> {
        let &addr = self
            .core
            .members
            .get(&site)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unknown peer"))?;
        self.inject_dial_delay(site, addr);
        let payload = req.encode();
        let mut stream = self.conns.checkout(addr)?;
        if write_frame(&mut stream, &payload).is_err() {
            // Stale after all: drop it and redial once (the dial itself
            // retries under the backoff schedule).
            stream.shutdown(std::net::Shutdown::Both).ok();
            stream = self.conns.checkout(addr)?;
            write_frame(&mut stream, &payload)?;
        }
        let result = self.pumped_read_frame(&mut stream);
        match &result {
            Ok(_) => {
                stream.set_read_timeout(None).ok();
                self.conns.checkin(addr, stream);
            }
            Err(_) => {
                stream.shutdown(std::net::Shutdown::Both).ok();
            }
        }
        result
    }

    /// Read one frame from a checked-out stream, pumping the event
    /// loop between short read timeouts. The accumulator persists
    /// across timeouts, so a reply split at any byte boundary is
    /// reassembled correctly no matter how many pumps interleave.
    fn pumped_read_frame(&mut self, stream: &mut TcpStream) -> io::Result<Frame> {
        stream.set_read_timeout(Some(Duration::from_millis(1)))?;
        let mut acc = FrameAccum::new();
        let mut buf = [0u8; 8192];
        let deadline = Instant::now() + RPC_DEADLINE;
        loop {
            if let Some(raw) = acc.next_frame()? {
                if acc.pending_bytes() != 0 {
                    // One request, one reply: trailing bytes mean the
                    // stream desynced — poison it rather than guess.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected trailing bytes on rpc stream",
                    ));
                }
                return Frame::decode(&raw)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
            }
            match stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "peer closed before replying",
                    ))
                }
                Ok(n) => acc.push(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "rpc deadline"));
                    }
                    self.pump(Mode::Nested);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries (ported from `peertrack::query`, reads via RPC)
    // ------------------------------------------------------------------

    /// Charge a finished query. The model cost goes through the WAL —
    /// query traffic mutates the metrics, and metrics are recovered
    /// state — while the wall-clock latency stays engine-side.
    fn account_query(&mut self, cost: &Cost, started_us: u64) {
        self.log_apply(WalRecord::Query {
            messages: cost.messages,
            hops: cost.hops,
            bytes: cost.bytes,
        });
        self.recorder
            .record_latency(MsgClass::Query, wall_us().saturating_sub(started_us));
    }

    /// §IV-A.3 lookup at this gateway, reduced to the in-regime form:
    /// current-`Lp` shard only. A miss with hosted neighbours (never in
    /// regime) would need further routed probes — counted as
    /// unsupported, mirroring [`Core::check_refresh_unneeded`].
    fn local_gateway_probe(&mut self, object: ObjectId) -> Option<Link> {
        let p = Prefix::of_id(&object.id(), self.core.lp);
        if let Some(e) = self.core.gateway.prefixes.get(&p).and_then(|s| s.get(&object)) {
            return Some(e.link());
        }
        let mut l = p.len();
        while l > self.core.group.l_min {
            l -= 1;
            if self.core.hosted.contains(&p.truncate(l)) {
                self.core.unsupported += 1;
            }
        }
        if p.len() < ids::prefix::MAX_PREFIX_BITS {
            let child = p.child(object.id().bit(p.len()));
            if self.core.hosted.contains(&child) {
                self.core.unsupported += 1;
            }
        }
        None
    }

    fn remote_knows(&mut self, site: SiteId, object: ObjectId) -> bool {
        if site == self.core.site {
            return self.core.iop.knows(object);
        }
        matches!(self.rpc(site, &Frame::IopKnows { object }), Ok(Frame::BoolResp(true)))
    }

    fn gateway_probe(&mut self, site: SiteId, object: ObjectId) -> Option<Link> {
        if site == self.core.site {
            return self.local_gateway_probe(object);
        }
        match self.rpc(site, &Frame::GatewayProbe { object }) {
            Ok(Frame::LinkResp(l)) => l,
            _ => None,
        }
    }

    /// Read a visit record at whichever site holds it. Auxiliary reads
    /// at the query's current cursor site are uncharged, like the
    /// simulator's direct state reads; only cursor *moves* pay
    /// (`fetch_record`'s `cost.step(1)`).
    fn rec_at(&mut self, site: SiteId, object: ObjectId, time: SimTime) -> Option<IopRecord> {
        if site == self.core.site {
            return self.core.iop.record_at(object, time).copied();
        }
        match self.rpc(site, &Frame::RecAt { object, time }) {
            Ok(Frame::RecResp(r)) => r,
            _ => None,
        }
    }

    fn rec_latest_at_or_before(
        &mut self,
        site: SiteId,
        object: ObjectId,
        t: SimTime,
    ) -> Option<IopRecord> {
        if site == self.core.site {
            return self.core.iop.latest_at_or_before(object, t).copied();
        }
        match self.rpc(site, &Frame::RecLatestAtOrBefore { object, t }) {
            Ok(Frame::RecResp(r)) => r,
            _ => None,
        }
    }

    fn rec_first(&mut self, site: SiteId, object: ObjectId) -> Option<IopRecord> {
        if site == self.core.site {
            return self.core.iop.all(object).first().copied();
        }
        match self.rpc(site, &Frame::RecFirst { object }) {
            Ok(Frame::RecResp(r)) => r,
            _ => None,
        }
    }

    fn rec_latest(&mut self, site: SiteId, object: ObjectId) -> Option<IopRecord> {
        if site == self.core.site {
            return self.core.iop.latest(object).copied();
        }
        match self.rpc(site, &Frame::RecLatest { object }) {
            Ok(Frame::RecResp(r)) => r,
            _ => None,
        }
    }

    /// Phase 1 of a query (`peertrack::query::discover`): find an
    /// anchor, checking the local repository, then every node along the
    /// routing path, then the gateway. Returns the anchor plus the site
    /// the query's cursor rests at.
    fn discover(&mut self, object: ObjectId, cost: &mut Cost) -> (Option<Anchor>, SiteId) {
        if self.core.iop.knows(object) {
            return (Some(Anchor::Record(self.core.site)), self.core.site);
        }
        let key = Prefix::of_id(&object.id(), self.core.lp).gateway_id();
        let Some(r) = self.lookup(key) else {
            return (None, self.core.site);
        };
        for nid in r.path.iter().skip(1) {
            cost.step(1);
            let site = self.core.site_of_chord(nid);
            if *nid != r.owner && self.remote_knows(site, object) {
                return (Some(Anchor::Record(site)), site);
            }
            if *nid == r.owner {
                let link = self.gateway_probe(site, object);
                return (link.map(Anchor::Latest), site);
            }
        }
        // Path was just the origin: the origin owns the key.
        let site = self.core.site_of_chord(&r.owner);
        let link = self.gateway_probe(site, object);
        (link.map(Anchor::Latest), site)
    }

    /// Walk one link with cursor accounting (`query::fetch_record`).
    fn fetch_record(
        &mut self,
        current: &mut SiteId,
        target: Link,
        object: ObjectId,
        cost: &mut Cost,
    ) -> Option<IopRecord> {
        if *current != target.site {
            cost.step(1);
            *current = target.site;
        }
        if target.site == self.core.site || self.core.members.contains_key(&target.site) {
            return self.rec_at(target.site, object, target.time);
        }
        // The target site is permanently gone: probe the live holders
        // of its replica repository, each probe a charged cursor move
        // (mirrors `NetWorld::iop_record`'s read fallback).
        for holder in self.core.holders_of_dead(target.site) {
            cost.step(1);
            let rec = if holder == self.core.site {
                self.core
                    .replica_iop
                    .get(&target.site)
                    .and_then(|st| st.record_at(object, target.time))
                    .copied()
            } else {
                match self.rpc(
                    holder,
                    &Frame::ReplRecAt { primary: target.site, object, time: target.time },
                ) {
                    Ok(Frame::RecResp(r)) => r,
                    _ => None,
                }
            };
            if let Some(r) = rec {
                *current = holder;
                return Some(r);
            }
        }
        None
    }

    /// Membership changed: drop the locate cache wholesale, mirroring
    /// the simulator's conservative churn rule. (Entries would still
    /// revalidate to exact answers — this just refuses to carry a
    /// reshaped cluster's old read path forward.)
    fn clear_locate_cache(&mut self) {
        if let Some(cache) = self.locate_cache.as_mut() {
            cache.clear();
        }
    }

    /// Answer a locate from the cached link `link`. The daemon cannot
    /// check a movement epoch the way the simulator does (no node sees
    /// every gateway mutation), so a hit is *revalidated*: the cached
    /// link's own IOP record proves whether it is still the latest,
    /// and the forward `to` chain leads to the fresh holder when it is
    /// not. Either way the answer equals what full rediscovery would
    /// return — visit records are immutable history.
    ///
    /// Returns `None` only when the revalidating fetch of the cached
    /// link itself found nothing (the entry refers to crash-lost
    /// records): the caller drops the entry and rediscovers.
    fn locate_from_cached(
        &mut self,
        link: Link,
        object: ObjectId,
        t: SimTime,
        cost: &mut Cost,
    ) -> Option<(Option<SiteId>, bool)> {
        let mut current = self.core.site;
        if t < link.time {
            // The cached link is in the object's past: walk backward
            // from it exactly as an `Anchor::Latest` walk would. Even
            // a stale "latest" is a correct historical anchor.
            let mut cur = link;
            loop {
                let Some(rec) = self.fetch_record(&mut current, cur, object, cost) else {
                    return if cur == link { None } else { Some((None, false)) };
                };
                if cur.time <= t {
                    return Some((Some(cur.site), true));
                }
                match rec.from {
                    None => return Some((None, true)),
                    Some(prev) => {
                        if prev.time <= t {
                            return Some((Some(prev.site), true));
                        }
                        cur = prev;
                    }
                }
            }
        }
        // t >= link.time: the cached holder answers unless the object
        // has moved on. One record fetch revalidates; a populated `to`
        // chain means it did move — follow it forward and refresh the
        // entry with the newest link reached.
        let mut cur = link;
        loop {
            let Some(rec) = self.fetch_record(&mut current, cur, object, cost) else {
                return if cur == link { None } else { Some((None, false)) };
            };
            let onward = match rec.to {
                Some(next) if t >= next.time => Some(next),
                _ => None,
            };
            match onward {
                Some(next) => cur = next,
                None => {
                    if cur != link {
                        if let Some(cache) = self.locate_cache.as_mut() {
                            cache.insert(object, 0, cur);
                        }
                    }
                    return Some((Some(cur.site), true));
                }
            }
        }
    }

    /// `L(o, t)` with this node as origin (ported `query::locate_raw`,
    /// plus the locate-answer cache of DESIGN.md §15 when configured).
    fn locate(&mut self, object: ObjectId, t: SimTime) -> (Option<SiteId>, Cost, bool) {
        let mut cost = Cost::default();
        // Daemon cache entries carry no epoch (always 0): revalidation
        // replaces the simulator's epoch check.
        if let Some(link) = self.locate_cache.as_mut().and_then(|c| c.get(object, 0)) {
            if let Some((answer, complete)) = self.locate_from_cached(link, object, t, &mut cost)
            {
                // Cache hits attribute the served locate to the origin
                // itself, as the simulator does.
                *self.query_load.entry(self.core.site).or_default() += 1;
                return (answer, cost, complete);
            }
            if let Some(cache) = self.locate_cache.as_mut() {
                cache.invalidate(object);
            }
        }
        let (anchor, mut current) = self.discover(object, &mut cost);
        let Some(anchor) = anchor else {
            return (None, cost, true);
        };
        // `discover` rests the cursor on the answering site — local
        // repository, intermediate record holder or gateway — which is
        // exactly where the simulator attributes the served locate.
        *self.query_load.entry(current).or_default() += 1;
        match anchor {
            Anchor::Latest(link) => {
                // Fill only from gateway discoveries, like the
                // simulator: the gateway's latest link is the one
                // answer worth reusing.
                if let Some(cache) = self.locate_cache.as_mut() {
                    cache.insert(object, 0, link);
                }
                if t >= link.time {
                    return (Some(link.site), cost, true);
                }
                let mut cur = link;
                loop {
                    let Some(rec) = self.fetch_record(&mut current, cur, object, &mut cost)
                    else {
                        return (None, cost, false);
                    };
                    if cur.time <= t {
                        return (Some(cur.site), cost, true);
                    }
                    match rec.from {
                        None => return (None, cost, true),
                        Some(prev) => {
                            if prev.time <= t {
                                return (Some(prev.site), cost, true);
                            }
                            cur = prev;
                        }
                    }
                }
            }
            Anchor::Record(site) => {
                if let Some(rec) = self.rec_latest_at_or_before(site, object, t) {
                    match rec.to {
                        None => return (Some(site), cost, true),
                        Some(next) if t < next.time => return (Some(site), cost, true),
                        Some(next) => {
                            let mut cur = next;
                            loop {
                                let Some(r) =
                                    self.fetch_record(&mut current, cur, object, &mut cost)
                                else {
                                    return (None, cost, false);
                                };
                                match r.to {
                                    None => return (Some(cur.site), cost, true),
                                    Some(nn) if t < nn.time => {
                                        return (Some(cur.site), cost, true)
                                    }
                                    Some(nn) => cur = nn,
                                }
                            }
                        }
                    }
                }
                let Some(first) = self.rec_first(site, object) else {
                    return (None, cost, false);
                };
                match first.from {
                    None => (None, cost, true),
                    Some(prev) => {
                        let mut cur = prev;
                        loop {
                            if cur.time <= t {
                                return (Some(cur.site), cost, true);
                            }
                            let Some(rec) =
                                self.fetch_record(&mut current, cur, object, &mut cost)
                            else {
                                return (None, cost, false);
                            };
                            match rec.from {
                                None => return (None, cost, true),
                                Some(p) => cur = p,
                            }
                        }
                    }
                }
            }
        }
    }

    /// `TR(o, t0, t1)` with this node as origin (ported
    /// `query::trace_raw`).
    fn trace(&mut self, object: ObjectId, t0: SimTime, t1: SimTime) -> (Path, Cost, bool) {
        let mut cost = Cost::default();
        if t0 > t1 {
            return (Vec::new(), cost, true);
        }
        let (anchor, mut current) = self.discover(object, &mut cost);
        let Some(anchor) = anchor else {
            return (Vec::new(), cost, true);
        };
        let mut complete = true;

        let start = match anchor {
            Anchor::Latest(link) => link,
            Anchor::Record(site) => {
                let Some(rec) = self.rec_latest(site, object) else {
                    return (Vec::new(), cost, false);
                };
                Link { site, time: rec.arrived }
            }
        };

        let mut after: Vec<Visit> = Vec::new();
        let mut anchor_from: Option<Link> = None;
        let mut cur = start;
        loop {
            let Some(rec) = self.fetch_record(&mut current, cur, object, &mut cost) else {
                complete = false;
                break;
            };
            if cur == start {
                anchor_from = rec.from;
            }
            after.push(Visit {
                site: cur.site,
                arrived: cur.time,
                departed: rec.to.map(|x| x.time),
            });
            match rec.to {
                Some(next) if next.time <= t1 => cur = next,
                _ => break,
            }
        }

        let mut before: Vec<Visit> = Vec::new();
        if start.time > t0 {
            let mut back = anchor_from;
            while let Some(l) = back {
                let Some(rec) = self.fetch_record(&mut current, l, object, &mut cost) else {
                    complete = false;
                    break;
                };
                before.push(Visit {
                    site: l.site,
                    arrived: l.time,
                    departed: rec.to.map(|x| x.time),
                });
                if l.time <= t0 {
                    break;
                }
                back = rec.from;
            }
        }

        before.reverse();
        before.extend(after);
        let path: Path = before.into_iter().filter(|v| v.overlaps(t0, t1)).collect();
        (path, cost, complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chord_ids_match_simulator_derivation() {
        // The sim derives ring ids as hash("site-{seed}-{index}"); the
        // daemon must produce identical ids or hop counts diverge.
        for seed in [0u64, 42, 0x9E3779B9] {
            for i in 0..8u32 {
                assert_eq!(
                    chord_id_for(seed, SiteId(i)),
                    Id::hash_str(&format!("site-{seed}-{i}"))
                );
            }
        }
    }

    #[test]
    fn cost_step_mirrors_query_cost() {
        let mut c = Cost::default();
        c.step(3);
        assert_eq!(c.messages, 3);
        assert_eq!(c.hops, 3);
        assert_eq!(c.bytes, 3 * QUERY_MSG_BYTES as u64);
    }

    #[test]
    fn replay_discards_outbox_but_keeps_state() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let seed = 7;
        let mk = || {
            let mut c = Core::new(SiteId(0), seed, GroupConfig::default(), addr);
            for s in 1..4u32 {
                c.apply_record(&WalRecord::Member {
                    site: SiteId(s),
                    addr: format!("127.0.0.1:{}", 7400 + s),
                });
            }
            c.outbox.clear();
            c
        };
        let objects: Vec<ObjectId> =
            (0..6u64).map(|n| ObjectId(Id::hash(&n.to_be_bytes()))).collect();
        let records = vec![
            WalRecord::Capture {
                at: SimTime::from_micros(1_000),
                objects: objects.clone(),
            },
            WalRecord::Flush { now: SimTime::from_micros(2_000) },
        ];

        let mut live = mk();
        let mut replayed = mk();
        let mut emitted = 0;
        for rec in &records {
            live.apply_record(rec);
            emitted += live.take_outbox().len();
            replayed.replay(rec);
        }
        assert!(emitted > 0, "flush must have produced GroupIndex traffic");
        assert!(replayed.outbox.is_empty());
        // Identical transitions: full state (addresses included) agrees.
        assert_eq!(live.state_bytes(true), replayed.state_bytes(true));
        assert_eq!(live.sent, replayed.sent);
    }
}
