//! One PeerTrack/Chord node served over real sockets.
//!
//! [`Node::spawn`] binds a listener and runs a single-threaded engine
//! that owns this site's slice of the state the simulator's `NetWorld`
//! keeps globally: the Chord routing replica, the capture window, the
//! IOP repository and the gateway shards. Per-connection reader threads
//! (from [`transport::Server`]) feed decoded frames into the engine's
//! queue; the engine processes them strictly serially, so every state
//! transition is as atomic as the simulator's event handlers.
//!
//! **Accounting bridge.** The engine charges the *model* cost the
//! simulator would charge — `Msg::wire_size()` bytes (not encoded frame
//! length), overlay hops from the Chord lookup, one message per
//! protocol send, queries bulk-charged at the origin — into its own
//! [`simnet::metrics::Metrics`]. Self-sends are handled inline and
//! uncharged, exactly like `NetWorld::dispatch`. Merging every node's
//! metrics therefore reproduces the simulator's global tally for the
//! same workload (asserted by `tests/tests/cluster_parity.rs`).
//!
//! **Routing.** Lookups run the iterative protocol for real: the origin
//! drives [`chord::LookupDriver`] and asks each hop over the network
//! ([`Frame::LookupStep`]); every node answers from its own replica.
//! Replicas are rebuilt deterministically from the sorted membership
//! (bootstrap-lowest-site, ascending joins, full stabilization), so a
//! converged cluster routes identically to the simulator's single ring.
//!
//! **Deadlock-freedom.** Only control-plane handlers (capture, flush,
//! locate, trace) issue blocking RPCs, and RPC handlers themselves
//! never block on further RPCs (depth 1). Control requests must be
//! serialized across the cluster (the harness awaits each ack); the
//! asynchronous protocol plane (`GroupIndex`, M2/M3) never blocks.
//!
//! **Virtual time.** There are no `Tmax` timers off-sim: the driver
//! carries explicit virtual instants ([`Frame::Capture`]`.at`) and
//! closes windows with [`Frame::Flush`]`{now}` when the simulator's
//! timer would have fired. Wall-clock exists only in the latency
//! histograms ([`obs::Recorder::record_latency`]).

use crate::proto::{CostWire, Frame, ProtoError};
use chord::{answer_step, LookupDriver, LookupResult, LookupState, Ring};
use ids::{Id, Prefix};
use moods::{ObjectId, Path, SiteId, Visit};
use obs::Recorder;
use peertrack::config::GroupConfig;
use peertrack::grouping::group_batch;
use peertrack::messages::{Msg, Wire};
use peertrack::query::QUERY_MSG_BYTES;
use peertrack::store::{GatewayStore, IndexEntry, IopRecord, IopStore, Link};
use peertrack::window::{WindowBatch, WindowBuffer, WindowEvent};
use peertrack::world::Anomalies;
use simnet::metrics::{Metrics, MsgClass};
use simnet::SimTime;
use std::collections::{BTreeMap, HashSet};
use std::io;
use std::net::SocketAddr;
use std::sync::mpsc::{channel, Receiver};
use std::thread::JoinHandle;
use std::time::{SystemTime, UNIX_EPOCH};
use transport::{Backoff, ConnCache, Incoming, Server};

/// The ring identity of a site, matching the simulator's derivation
/// (`peertrack::net::Builder`) so lookups hash identically.
pub fn chord_id_for(seed: u64, site: SiteId) -> Id {
    let i = site.0 as usize;
    Id::hash_str(&format!("site-{seed}-{i}"))
}

/// Wall clock in µs since the Unix epoch (latency envelopes only —
/// never used for protocol decisions).
fn wall_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Static configuration of one daemon node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This site's id (also its Chord `app_index`).
    pub site: SiteId,
    /// Cluster-wide seed: determines every site's ring identity.
    pub seed: u64,
    /// Group-indexing parameters. The daemon supports the paper's
    /// experiment regime: group mode with `SizeEstimation::Exact`
    /// semantics (`Lp` from the known membership count).
    pub group: GroupConfig,
    /// Listen address, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub listen: String,
    /// Existing member to join through (`None` = this node bootstraps
    /// the cluster).
    pub bootstrap: Option<SocketAddr>,
}

impl NodeConfig {
    /// Loopback config with an ephemeral port.
    pub fn loopback(site: SiteId, seed: u64, bootstrap: Option<SocketAddr>) -> NodeConfig {
        NodeConfig {
            site,
            seed,
            group: GroupConfig::default(),
            listen: "127.0.0.1:0".to_string(),
            bootstrap,
        }
    }
}

/// Everything a node hands back when it shuts down.
pub struct NodeReport {
    /// The site that ran.
    pub site: SiteId,
    /// Model accounting (merge across nodes to compare with the
    /// simulator's global tally).
    pub metrics: Metrics,
    /// Protocol anomaly counters (all zero in a clean run).
    pub anomalies: Anomalies,
    /// Protocol situations the daemon does not implement (refresh
    /// fetches, delegation, individual mode); zero within the supported
    /// regime — the parity test asserts it.
    pub unsupported: u64,
    /// Wall-clock delivery-latency histograms per message class, plus
    /// origin-side query latencies under [`MsgClass::Query`].
    pub recorder: Recorder,
    /// Protocol-plane frames sent to other nodes.
    pub sent: u64,
    /// Protocol-plane frames received.
    pub received: u64,
}

/// A running node: its address plus the engine thread's handle.
pub struct Node {
    site: SiteId,
    addr: SocketAddr,
    engine: Option<JoinHandle<NodeReport>>,
}

impl Node {
    /// Bind the listener, join through the bootstrap peer (if any) and
    /// start the engine thread.
    pub fn spawn(cfg: NodeConfig) -> io::Result<Node> {
        let (tx, rx) = channel::<Incoming>();
        let server = Server::bind(&cfg.listen, tx)?;
        let addr = server.local_addr();
        let site = cfg.site;
        let engine = std::thread::Builder::new()
            .name(format!("peertrackd-{}", site.0))
            .spawn(move || Engine::new(cfg, addr, server, rx).run())?;
        Ok(Node { site, addr, engine: Some(engine) })
    }

    /// The site this node serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The bound listener address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the engine to exit (send [`Frame::Shutdown`] first) and
    /// collect its report.
    pub fn join(mut self) -> NodeReport {
        self.engine
            .take()
            .expect("join called once")
            .join()
            .expect("engine thread panicked")
    }
}

/// `NodeHandle` is the public alias used by the harness and binary.
pub type NodeHandle = Node;

/// Origin-side query cost accumulator (mirrors the private
/// `peertrack::query::QueryCost::step`).
#[derive(Clone, Copy, Debug, Default)]
struct Cost {
    messages: u64,
    hops: u64,
    bytes: u64,
}

impl Cost {
    fn step(&mut self, n: u64) {
        self.messages += n;
        self.hops += n;
        self.bytes += n * QUERY_MSG_BYTES as u64;
    }

    fn wire(&self) -> CostWire {
        CostWire { messages: self.messages, hops: self.hops, bytes: self.bytes }
    }
}

/// Traversal anchor (mirrors `peertrack::query::Anchor`).
enum Anchor {
    Record(SiteId),
    Latest(Link),
}

struct Engine {
    site: SiteId,
    seed: u64,
    group: GroupConfig,
    addr: SocketAddr,
    server: Server,
    rx: Receiver<Incoming>,
    conns: ConnCache,
    /// Site → listener address, self included. Sorted iteration keeps
    /// ring rebuilds deterministic.
    members: BTreeMap<SiteId, SocketAddr>,
    ring: Ring,
    lp: usize,
    window: WindowBuffer,
    iop: IopStore,
    gateway: GatewayStore,
    hosted: HashSet<Prefix>,
    metrics: Metrics,
    recorder: Recorder,
    next_seq: u64,
    /// `(sender, seq)` pairs already processed (duplicate suppression,
    /// mirroring the simulator's per-site `seen_seqs`).
    seen: HashSet<(u32, u64)>,
    sent: u64,
    received: u64,
    anomalies: Anomalies,
    unsupported: u64,
}

impl Engine {
    fn new(cfg: NodeConfig, addr: SocketAddr, server: Server, rx: Receiver<Incoming>) -> Engine {
        let mut members = BTreeMap::new();
        members.insert(cfg.site, addr);
        let mut e = Engine {
            site: cfg.site,
            seed: cfg.seed,
            group: cfg.group,
            addr,
            server,
            rx,
            conns: ConnCache::new(Backoff::default()),
            members,
            ring: Ring::new(),
            lp: cfg.group.l_min,
            window: WindowBuffer::new(cfg.site, cfg.group.n_max),
            iop: IopStore::new(),
            gateway: GatewayStore::new(),
            hosted: HashSet::new(),
            metrics: Metrics::new(),
            recorder: Recorder::new(),
            next_seq: 1,
            seen: HashSet::new(),
            sent: 0,
            received: 0,
            anomalies: Anomalies::default(),
            unsupported: 0,
        };
        if let Some(bootstrap) = cfg.bootstrap {
            e.join_via(bootstrap);
        }
        e.rebuild_ring();
        e
    }

    /// Join the cluster through an existing member (blocking RPC).
    fn join_via(&mut self, bootstrap: SocketAddr) {
        let req = Frame::JoinReq { site: self.site, addr: self.addr.to_string() };
        match self.conns.request(bootstrap, &req.encode()).map_err(io::Error::other).and_then(
            |raw| Frame::decode(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        ) {
            Ok(Frame::JoinResp { peers }) => {
                for (site, addr) in peers {
                    if let Ok(a) = addr.parse() {
                        self.members.insert(site, a);
                    }
                }
            }
            _ => {
                // Leave membership as-is; the bootstrap's PeerJoined
                // broadcast (or a retried join by the operator) repairs
                // it. Count the oddity so tests notice.
                self.unsupported += 1;
            }
        }
    }

    /// Rebuild the local ring replica from the sorted membership,
    /// exactly like the simulator's builder: the lowest site bootstraps,
    /// the rest join ascending, then full stabilization. Every node
    /// derives the identical ring, and `Lp` follows the membership count
    /// (the `SizeEstimation::Exact` policy).
    fn rebuild_ring(&mut self) {
        let mut ring = Ring::new();
        let sites: Vec<SiteId> = self.members.keys().copied().collect();
        let ids: Vec<Id> = sites.iter().map(|s| chord_id_for(self.seed, *s)).collect();
        ring.bootstrap(ids[0], sites[0].0 as usize);
        for (k, s) in sites.iter().enumerate().skip(1) {
            ring.join(ids[0], ids[k], s.0 as usize).expect("replica join");
        }
        ring.stabilize_all();
        self.ring = ring;
        self.lp = self.group.scheme.lp_clamped(self.ring.len(), self.group.l_min);
    }

    fn my_chord_id(&self) -> Id {
        chord_id_for(self.seed, self.site)
    }

    fn site_of_chord(&self, id: &Id) -> SiteId {
        SiteId(self.ring.app_index_of(id).expect("ring member") as u32)
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    fn run(mut self) -> NodeReport {
        while let Ok(mut incoming) = self.rx.recv() {
            let frame = match Frame::decode(&incoming.frame) {
                Ok(f) => f,
                Err(ProtoError::Codec(_)) | Err(_) => {
                    self.unsupported += 1;
                    continue;
                }
            };
            match frame {
                Frame::Protocol { sender, hops, sent_us, wire } => {
                    self.on_protocol(sender, hops, sent_us, wire);
                }
                Frame::JoinReq { site, addr } => {
                    let reply = self.on_join_req(site, &addr);
                    let _ = incoming.reply.send(&reply.encode());
                }
                Frame::PeerJoined { site, addr } => {
                    if let Ok(a) = addr.parse() {
                        self.members.insert(site, a);
                        self.rebuild_ring();
                    }
                }
                Frame::JoinResp { .. } => self.unsupported += 1,
                Frame::Capture { at, objects } => {
                    self.on_capture(at, &objects);
                    let _ = incoming.reply.send(&Frame::Ack.encode());
                }
                Frame::Flush { now } => {
                    self.on_flush(now);
                    let _ = incoming.reply.send(&Frame::Ack.encode());
                }
                Frame::Locate { object, t } => {
                    let started = wall_us();
                    let (answer, cost, complete) = self.locate(object, t);
                    self.account_query(&cost, started);
                    let reply =
                        Frame::LocateResp { answer, cost: cost.wire(), complete };
                    let _ = incoming.reply.send(&reply.encode());
                }
                Frame::Trace { object, t0, t1 } => {
                    let started = wall_us();
                    let (path, cost, complete) = self.trace(object, t0, t1);
                    self.account_query(&cost, started);
                    let reply = Frame::TraceResp { path, cost: cost.wire(), complete };
                    let _ = incoming.reply.send(&reply.encode());
                }
                Frame::Status => {
                    let reply = Frame::StatusResp {
                        site: self.site,
                        members: self.members.len() as u32,
                        sent: self.sent,
                        received: self.received,
                    };
                    let _ = incoming.reply.send(&reply.encode());
                }
                Frame::Shutdown => {
                    let _ = incoming.reply.send(&Frame::Ack.encode());
                    break;
                }
                Frame::LookupStep { key } => {
                    let me = self.my_chord_id();
                    let node = self.ring.get(&me).expect("self in replica");
                    let answer = answer_step(node, &key, |id| self.ring.contains(id));
                    let _ = incoming.reply.send(&Frame::StepResp(answer).encode());
                }
                Frame::GatewayProbe { object } => {
                    let link = self.local_gateway_probe(object);
                    let _ = incoming.reply.send(&Frame::LinkResp(link).encode());
                }
                Frame::IopKnows { object } => {
                    let reply = Frame::BoolResp(self.iop.knows(object));
                    let _ = incoming.reply.send(&reply.encode());
                }
                Frame::RecAt { object, time } => {
                    let rec = self.iop.record_at(object, time).copied();
                    let _ = incoming.reply.send(&Frame::RecResp(rec).encode());
                }
                Frame::RecLatestAtOrBefore { object, t } => {
                    let rec = self.iop.latest_at_or_before(object, t).copied();
                    let _ = incoming.reply.send(&Frame::RecResp(rec).encode());
                }
                Frame::RecFirst { object } => {
                    let rec = self.iop.all(object).first().copied();
                    let _ = incoming.reply.send(&Frame::RecResp(rec).encode());
                }
                Frame::RecLatest { object } => {
                    let rec = self.iop.latest(object).copied();
                    let _ = incoming.reply.send(&Frame::RecResp(rec).encode());
                }
                // Response frames arriving outside a request context.
                Frame::Ack
                | Frame::LocateResp { .. }
                | Frame::TraceResp { .. }
                | Frame::StatusResp { .. }
                | Frame::StepResp(_)
                | Frame::LinkResp(_)
                | Frame::BoolResp(_)
                | Frame::RecResp(_) => self.unsupported += 1,
            }
        }
        self.server.shutdown();
        self.conns.close_all();
        NodeReport {
            site: self.site,
            metrics: self.metrics,
            anomalies: self.anomalies,
            unsupported: self.unsupported,
            recorder: self.recorder,
            sent: self.sent,
            received: self.received,
        }
    }

    fn on_join_req(&mut self, site: SiteId, addr: &str) -> Frame {
        let Ok(parsed) = addr.parse::<SocketAddr>() else {
            self.unsupported += 1;
            return Frame::JoinResp { peers: Vec::new() };
        };
        self.members.insert(site, parsed);
        self.rebuild_ring();
        // Tell everyone else about the newcomer (fire-and-forget,
        // daemon-plane: not charged, not counted as protocol traffic).
        let others: Vec<SocketAddr> = self
            .members
            .iter()
            .filter(|(s, _)| **s != self.site && **s != site)
            .map(|(_, a)| *a)
            .collect();
        let news = Frame::PeerJoined { site, addr: addr.to_string() }.encode();
        for peer in others {
            let _ = self.conns.send(peer, &news);
        }
        Frame::JoinResp {
            peers: self.members.iter().map(|(s, a)| (*s, a.to_string())).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Protocol plane (ported from `NetWorld::handle`)
    // ------------------------------------------------------------------

    fn on_protocol(&mut self, sender: SiteId, _hops: u32, sent_us: u64, wire: Wire) {
        self.received += 1;
        self.recorder
            .record_latency(wire.msg.class(), wall_us().saturating_sub(sent_us));
        if wire.seq != 0 && !self.seen.insert((sender.0, wire.seq)) {
            self.anomalies.duplicates_suppressed += 1;
            return;
        }
        self.handle_msg(wire.msg);
    }

    fn handle_msg(&mut self, msg: Msg) {
        match msg {
            Msg::SetTo { updates } => {
                for (o, arrived, link) in updates {
                    if !self.iop.set_to(o, arrived, link) {
                        self.anomalies.dangling_iop_updates += 1;
                    }
                }
            }
            Msg::SetFrom { updates } => {
                for (o, arrived, link) in updates {
                    if !self.iop.set_from(o, arrived, link) {
                        self.anomalies.dangling_iop_updates += 1;
                    }
                }
            }
            Msg::GroupIndex { prefix, site, members } => {
                self.handle_group_index(prefix, site, members);
            }
            // Individual mode, triangle delegation and split/merge
            // migration are simulator-only paths (they never trigger in
            // the stable-`Lp`, under-threshold regime the daemon
            // supports); receiving one means the regime was violated.
            Msg::Arrival { .. } | Msg::Delegate { .. } | Msg::Migrate { .. } => {
                self.unsupported += 1;
            }
            Msg::Ack { .. } => self.unsupported += 1,
        }
    }

    /// Deliver a protocol message: self-sends are handled inline and
    /// uncharged; networked sends are sequenced and charged the model
    /// cost at the sender — both exactly as `NetWorld::dispatch`.
    fn dispatch(&mut self, to: SiteId, hops: u32, msg: Msg) {
        if to == self.site {
            self.handle_msg(msg);
            return;
        }
        let class = msg.class();
        let bytes = msg.wire_size();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.metrics.record(class, bytes, hops);
        let frame = Frame::Protocol {
            sender: self.site,
            hops,
            sent_us: wall_us(),
            wire: Wire { seq, msg },
        };
        let Some(&addr) = self.members.get(&to) else {
            self.anomalies.dropped_to_dead += 1;
            return;
        };
        match self.conns.send(addr, &frame.encode()) {
            Ok(()) => self.sent += 1,
            Err(_) => self.anomalies.dropped_to_dead += 1,
        }
    }

    /// Ported `NetWorld::handle_group_index` (the Fig. 5 `index`
    /// algorithm) against this node's local shard slice.
    fn handle_group_index(
        &mut self,
        prefix: Prefix,
        site: SiteId,
        members: Vec<(ObjectId, SimTime)>,
    ) {
        let unknown: Vec<ObjectId> = {
            let shard = self.gateway.shard_mut(prefix);
            members.iter().map(|&(o, _)| o).filter(|o| shard.get(o).is_none()).collect()
        };
        if !unknown.is_empty() {
            let missing: HashSet<ObjectId> = unknown.into_iter().collect();
            self.check_refresh_unneeded(prefix, &missing);
        }

        let mut m2: BTreeMap<SiteId, Vec<(ObjectId, SimTime, Link)>> = BTreeMap::new();
        let mut m3: Vec<(ObjectId, SimTime, Option<Link>)> = Vec::with_capacity(members.len());
        {
            let shard = self.gateway.shard_mut(prefix);
            for &(o, t) in &members {
                let prev = shard.get(&o).copied();
                if let Some(p) = prev {
                    if p.time > t {
                        self.anomalies.out_of_order_arrivals += 1;
                        continue;
                    }
                }
                shard.upsert(o, IndexEntry { site, time: t, prev: prev.map(|p| p.link()) });
                let new_link = Link { site, time: t };
                if let Some(p) = prev {
                    m2.entry(p.site).or_default().push((o, p.time, new_link));
                }
                m3.push((o, t, prev.map(|p| p.link())));
            }
        }
        self.hosted.insert(prefix);

        for (dest, updates) in m2 {
            self.dispatch(dest, 1, Msg::SetTo { updates });
        }
        if !m3.is_empty() {
            self.dispatch(site, 1, Msg::SetFrom { updates: m3 });
        }
        self.maybe_delegate(prefix);
    }

    /// The Fig. 5 refresh walk, reduced to its in-regime form: with a
    /// stable `Lp` at `Lmin`, no delegation and no split/merge, the
    /// ascent never iterates and no descent child is ever hosted, so
    /// every probe is a free existence check (the simulator charges
    /// nothing either, `count_existence_checks = false`). If a probe
    /// *would* find a hosted prefix, a real entry-moving fetch RPC would
    /// be required — the daemon doesn't implement it, and counts the
    /// situation instead so parity tests fail loudly rather than drift.
    fn check_refresh_unneeded(&mut self, prefix: Prefix, missing: &HashSet<ObjectId>) {
        let mut l = prefix.len();
        while l > self.group.l_min {
            l -= 1;
            if self.hosted.contains(&prefix.truncate(l)) {
                self.unsupported += 1;
            }
        }
        if prefix.len() < ids::prefix::MAX_PREFIX_BITS {
            for one in [false, true] {
                let child = prefix.child(one);
                if missing.iter().any(|o| child.matches(&o.id()))
                    && self.hosted.contains(&child)
                {
                    self.unsupported += 1;
                }
            }
        }
    }

    /// Delegation threshold check (Fig. 5 `update_index` lines 2–4).
    /// Crossing it off-sim is unsupported — counted, not silently
    /// skipped.
    fn maybe_delegate(&mut self, prefix: Prefix) {
        let Some(threshold) = self.group.delegate_threshold else { return };
        if prefix.len() >= ids::prefix::MAX_PREFIX_BITS {
            return;
        }
        if self.gateway.shard_mut(prefix).len() > threshold {
            self.unsupported += 1;
        }
    }

    // ------------------------------------------------------------------
    // Capture path (ported from `NetWorld::capture_now` / `index_batch`)
    // ------------------------------------------------------------------

    fn on_capture(&mut self, at: SimTime, objects: &[ObjectId]) {
        for &o in objects {
            self.iop.capture(o, at);
        }
        for &o in objects {
            match self.window.push(o, at) {
                // Timers are the driver's job off-sim (explicit Flush).
                WindowEvent::ArmTimer | WindowEvent::Buffered => {}
                WindowEvent::FlushByCount(batch) => self.index_batch(batch),
            }
        }
    }

    fn on_flush(&mut self, now: SimTime) {
        if let Some(batch) = self.window.flush(now) {
            self.index_batch(batch);
        }
    }

    fn index_batch(&mut self, batch: WindowBatch) {
        for group in group_batch(&batch.observations, self.lp) {
            let key = group.prefix.gateway_id();
            let Some(r) = self.lookup(key) else {
                self.unsupported += 1;
                continue;
            };
            let owner = self.site_of_chord(&r.owner);
            let msg =
                Msg::GroupIndex { prefix: group.prefix, site: self.site, members: group.members };
            self.dispatch(owner, r.hops, msg);
        }
    }

    // ------------------------------------------------------------------
    // Distributed lookup (origin drives, peers answer)
    // ------------------------------------------------------------------

    /// Iterative Chord lookup over the network. Each hop's routing
    /// decision comes from that node's own replica via
    /// [`Frame::LookupStep`]; the local step is answered in-process.
    /// Returns `None` on transport failure or routing loop.
    fn lookup(&mut self, key: Id) -> Option<LookupResult> {
        let me = self.my_chord_id();
        let mut driver = LookupDriver::new(me, key, self.ring.len());
        loop {
            match driver.state() {
                LookupState::Ask(node) => {
                    let answer = if node == me {
                        let state = self.ring.get(&node).expect("self in replica");
                        answer_step(state, &key, |id| self.ring.contains(id))
                    } else {
                        let site = self.site_of_chord(&node);
                        match self.rpc(site, &Frame::LookupStep { key }) {
                            Ok(Frame::StepResp(a)) => a,
                            _ => return None,
                        }
                    };
                    driver.answer(answer);
                }
                LookupState::Done(result) => return Some(result),
                LookupState::Failed(_) => return None,
            }
        }
    }

    /// Blocking request/response to a peer's engine.
    fn rpc(&mut self, site: SiteId, req: &Frame) -> io::Result<Frame> {
        let &addr = self
            .members
            .get(&site)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unknown peer"))?;
        let raw = self.conns.request(addr, &req.encode())?;
        Frame::decode(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    // ------------------------------------------------------------------
    // Queries (ported from `peertrack::query`, reads via RPC)
    // ------------------------------------------------------------------

    fn account_query(&mut self, cost: &Cost, started_us: u64) {
        self.metrics
            .record_bulk(MsgClass::Query, cost.messages, cost.bytes, cost.hops);
        self.recorder
            .record_latency(MsgClass::Query, wall_us().saturating_sub(started_us));
    }

    /// §IV-A.3 lookup at this gateway, reduced to the in-regime form:
    /// current-`Lp` shard only. A miss with hosted neighbours (never in
    /// regime) would need further routed probes — counted as
    /// unsupported, mirroring [`Engine::check_refresh_unneeded`].
    fn local_gateway_probe(&mut self, object: ObjectId) -> Option<Link> {
        let p = Prefix::of_id(&object.id(), self.lp);
        if let Some(e) = self.gateway.prefixes.get(&p).and_then(|s| s.get(&object)) {
            return Some(e.link());
        }
        let mut l = p.len();
        while l > self.group.l_min {
            l -= 1;
            if self.hosted.contains(&p.truncate(l)) {
                self.unsupported += 1;
            }
        }
        if p.len() < ids::prefix::MAX_PREFIX_BITS {
            let child = p.child(object.id().bit(p.len()));
            if self.hosted.contains(&child) {
                self.unsupported += 1;
            }
        }
        None
    }

    fn remote_knows(&mut self, site: SiteId, object: ObjectId) -> bool {
        if site == self.site {
            return self.iop.knows(object);
        }
        matches!(self.rpc(site, &Frame::IopKnows { object }), Ok(Frame::BoolResp(true)))
    }

    fn gateway_probe(&mut self, site: SiteId, object: ObjectId) -> Option<Link> {
        if site == self.site {
            return self.local_gateway_probe(object);
        }
        match self.rpc(site, &Frame::GatewayProbe { object }) {
            Ok(Frame::LinkResp(l)) => l,
            _ => None,
        }
    }

    /// Read a visit record at whichever site holds it. Auxiliary reads
    /// at the query's current cursor site are uncharged, like the
    /// simulator's direct state reads; only cursor *moves* pay
    /// (`fetch_record`'s `cost.step(1)`).
    fn rec_at(&mut self, site: SiteId, object: ObjectId, time: SimTime) -> Option<IopRecord> {
        if site == self.site {
            return self.iop.record_at(object, time).copied();
        }
        match self.rpc(site, &Frame::RecAt { object, time }) {
            Ok(Frame::RecResp(r)) => r,
            _ => None,
        }
    }

    fn rec_latest_at_or_before(
        &mut self,
        site: SiteId,
        object: ObjectId,
        t: SimTime,
    ) -> Option<IopRecord> {
        if site == self.site {
            return self.iop.latest_at_or_before(object, t).copied();
        }
        match self.rpc(site, &Frame::RecLatestAtOrBefore { object, t }) {
            Ok(Frame::RecResp(r)) => r,
            _ => None,
        }
    }

    fn rec_first(&mut self, site: SiteId, object: ObjectId) -> Option<IopRecord> {
        if site == self.site {
            return self.iop.all(object).first().copied();
        }
        match self.rpc(site, &Frame::RecFirst { object }) {
            Ok(Frame::RecResp(r)) => r,
            _ => None,
        }
    }

    fn rec_latest(&mut self, site: SiteId, object: ObjectId) -> Option<IopRecord> {
        if site == self.site {
            return self.iop.latest(object).copied();
        }
        match self.rpc(site, &Frame::RecLatest { object }) {
            Ok(Frame::RecResp(r)) => r,
            _ => None,
        }
    }

    /// Phase 1 of a query (`peertrack::query::discover`): find an
    /// anchor, checking the local repository, then every node along the
    /// routing path, then the gateway. Returns the anchor plus the site
    /// the query's cursor rests at.
    fn discover(&mut self, object: ObjectId, cost: &mut Cost) -> (Option<Anchor>, SiteId) {
        if self.iop.knows(object) {
            return (Some(Anchor::Record(self.site)), self.site);
        }
        let key = Prefix::of_id(&object.id(), self.lp).gateway_id();
        let Some(r) = self.lookup(key) else {
            return (None, self.site);
        };
        for nid in r.path.iter().skip(1) {
            cost.step(1);
            let site = self.site_of_chord(nid);
            if *nid != r.owner && self.remote_knows(site, object) {
                return (Some(Anchor::Record(site)), site);
            }
            if *nid == r.owner {
                let link = self.gateway_probe(site, object);
                return (link.map(Anchor::Latest), site);
            }
        }
        // Path was just the origin: the origin owns the key.
        let site = self.site_of_chord(&r.owner);
        let link = self.gateway_probe(site, object);
        (link.map(Anchor::Latest), site)
    }

    /// Walk one link with cursor accounting (`query::fetch_record`).
    fn fetch_record(
        &mut self,
        current: &mut SiteId,
        target: Link,
        object: ObjectId,
        cost: &mut Cost,
    ) -> Option<IopRecord> {
        if *current != target.site {
            cost.step(1);
            *current = target.site;
        }
        self.rec_at(target.site, object, target.time)
    }

    /// `L(o, t)` with this node as origin (ported `query::locate_raw`).
    fn locate(&mut self, object: ObjectId, t: SimTime) -> (Option<SiteId>, Cost, bool) {
        let mut cost = Cost::default();
        let (anchor, mut current) = self.discover(object, &mut cost);
        let Some(anchor) = anchor else {
            return (None, cost, true);
        };
        match anchor {
            Anchor::Latest(link) => {
                if t >= link.time {
                    return (Some(link.site), cost, true);
                }
                let mut cur = link;
                loop {
                    let Some(rec) = self.fetch_record(&mut current, cur, object, &mut cost)
                    else {
                        return (None, cost, false);
                    };
                    if cur.time <= t {
                        return (Some(cur.site), cost, true);
                    }
                    match rec.from {
                        None => return (None, cost, true),
                        Some(prev) => {
                            if prev.time <= t {
                                return (Some(prev.site), cost, true);
                            }
                            cur = prev;
                        }
                    }
                }
            }
            Anchor::Record(site) => {
                if let Some(rec) = self.rec_latest_at_or_before(site, object, t) {
                    match rec.to {
                        None => return (Some(site), cost, true),
                        Some(next) if t < next.time => return (Some(site), cost, true),
                        Some(next) => {
                            let mut cur = next;
                            loop {
                                let Some(r) =
                                    self.fetch_record(&mut current, cur, object, &mut cost)
                                else {
                                    return (None, cost, false);
                                };
                                match r.to {
                                    None => return (Some(cur.site), cost, true),
                                    Some(nn) if t < nn.time => {
                                        return (Some(cur.site), cost, true)
                                    }
                                    Some(nn) => cur = nn,
                                }
                            }
                        }
                    }
                }
                let Some(first) = self.rec_first(site, object) else {
                    return (None, cost, false);
                };
                match first.from {
                    None => (None, cost, true),
                    Some(prev) => {
                        let mut cur = prev;
                        loop {
                            if cur.time <= t {
                                return (Some(cur.site), cost, true);
                            }
                            let Some(rec) =
                                self.fetch_record(&mut current, cur, object, &mut cost)
                            else {
                                return (None, cost, false);
                            };
                            match rec.from {
                                None => return (None, cost, true),
                                Some(p) => cur = p,
                            }
                        }
                    }
                }
            }
        }
    }

    /// `TR(o, t0, t1)` with this node as origin (ported
    /// `query::trace_raw`).
    fn trace(&mut self, object: ObjectId, t0: SimTime, t1: SimTime) -> (Path, Cost, bool) {
        let mut cost = Cost::default();
        if t0 > t1 {
            return (Vec::new(), cost, true);
        }
        let (anchor, mut current) = self.discover(object, &mut cost);
        let Some(anchor) = anchor else {
            return (Vec::new(), cost, true);
        };
        let mut complete = true;

        let start = match anchor {
            Anchor::Latest(link) => link,
            Anchor::Record(site) => {
                let Some(rec) = self.rec_latest(site, object) else {
                    return (Vec::new(), cost, false);
                };
                Link { site, time: rec.arrived }
            }
        };

        let mut after: Vec<Visit> = Vec::new();
        let mut anchor_from: Option<Link> = None;
        let mut cur = start;
        loop {
            let Some(rec) = self.fetch_record(&mut current, cur, object, &mut cost) else {
                complete = false;
                break;
            };
            if cur == start {
                anchor_from = rec.from;
            }
            after.push(Visit {
                site: cur.site,
                arrived: cur.time,
                departed: rec.to.map(|x| x.time),
            });
            match rec.to {
                Some(next) if next.time <= t1 => cur = next,
                _ => break,
            }
        }

        let mut before: Vec<Visit> = Vec::new();
        if start.time > t0 {
            let mut back = anchor_from;
            while let Some(l) = back {
                let Some(rec) = self.fetch_record(&mut current, l, object, &mut cost) else {
                    complete = false;
                    break;
                };
                before.push(Visit {
                    site: l.site,
                    arrived: l.time,
                    departed: rec.to.map(|x| x.time),
                });
                if l.time <= t0 {
                    break;
                }
                back = rec.from;
            }
        }

        before.reverse();
        before.extend(after);
        let path: Path = before.into_iter().filter(|v| v.overlaps(t0, t1)).collect();
        (path, cost, complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chord_ids_match_simulator_derivation() {
        // The sim derives ring ids as hash("site-{seed}-{index}"); the
        // daemon must produce identical ids or hop counts diverge.
        for seed in [0u64, 42, 0x9E3779B9] {
            for i in 0..8u32 {
                assert_eq!(
                    chord_id_for(seed, SiteId(i)),
                    Id::hash_str(&format!("site-{seed}-{i}"))
                );
            }
        }
    }

    #[test]
    fn cost_step_mirrors_query_cost() {
        let mut c = Cost::default();
        c.step(3);
        assert_eq!(c.messages, 3);
        assert_eq!(c.hops, 3);
        assert_eq!(c.bytes, 3 * QUERY_MSG_BYTES as u64);
    }
}
