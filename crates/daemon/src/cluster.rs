//! In-process loopback cluster: N daemon nodes on ephemeral 127.0.0.1
//! ports, driven through the same schedule the simulator runs.
//!
//! The harness is the cluster's *virtual-time conductor*. Off-sim there
//! is no global clock and no timer wheel, so the harness carries both:
//! it keeps a per-site [`WindowBuffer`] mirror (fed the same pushes the
//! node sees, so it knows when the simulator's `Tmax` timer would have
//! been armed or canceled) and injects [`Frame::Flush`] at exactly the
//! virtual instant the timer would have fired. Captures and flushes are
//! interleaved in virtual-time order — ties broken like the simulator's
//! event queue (earlier-scheduled first) — so a converged cluster walks
//! the same state trajectory as `NetWorld` under the same workload.
//!
//! Control operations are strictly serialized: the harness sends one
//! capture/flush/query at a time and, whenever an operation can have
//! emitted protocol traffic, waits for the cluster to **quiesce**
//! (every node's sent/received frame counters globally balanced and
//! stable) before proceeding. That preserves the simulator's causal
//! delivery order — two gateways' `GroupIndex` messages can never race
//! each other on different TCP connections — and is also what makes the
//! blocking RPC pattern deadlock-free (see `crate::node`).

use crate::node::{Node, NodeConfig, NodeReport};
use crate::proto::{CostWire, Frame};
use durable::FsyncMode;
use moods::{ObjectId, Path, SiteId};
use peertrack::config::GroupConfig;
use peertrack::window::{WindowBuffer, WindowEvent};
use simnet::SimTime;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use transport::{Backoff, ConnCache};
use workload::CaptureEvent;

/// How long [`LoopbackCluster::quiesce`] and membership convergence may
/// take before the harness declares the cluster wedged.
const SETTLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Checked conversion from a harness vector index to a wire [`SiteId`].
/// Every site-indexed structure here is a `Vec`, so an index that does
/// not fit `u32` is a harness bug — fail loudly instead of letting
/// `as u32` silently truncate into some *other* site's id.
fn site_id(i: usize) -> SiteId {
    SiteId(u32::try_from(i).unwrap_or_else(|_| panic!("site index {i} exceeds u32::MAX")))
}

/// Durable-storage settings shared by every node of a durable cluster
/// (kept so [`LoopbackCluster::restart`] can respawn with the same).
#[derive(Clone, Debug)]
struct DurableSetup {
    root: PathBuf,
    fsync: FsyncMode,
    snapshot_every: u64,
}

/// A resumable position in a capture schedule: the sorted events plus
/// how many have fired. The cluster's window mirrors and timer
/// deadlines carry the rest of the mid-schedule state, so a harness can
/// run part of a schedule, crash and restart a node, and continue from
/// exactly where it stopped.
pub struct ScheduleCursor {
    evs: Vec<CaptureEvent>,
    i: usize,
}

impl ScheduleCursor {
    /// Sort `events` into firing order (stable: ties keep injection
    /// order, like the simulator's event queue) and point at the start.
    pub fn new(events: &[CaptureEvent]) -> ScheduleCursor {
        let mut evs = events.to_vec();
        evs.sort_by_key(|e| e.at);
        ScheduleCursor { evs, i: 0 }
    }

    /// Capture events not yet fired (pending timer flushes are tracked
    /// by the cluster, so `0` here does not mean the schedule is done —
    /// [`LoopbackCluster::run_cursor`] returning `0` does).
    pub fn remaining(&self) -> usize {
        self.evs.len() - self.i
    }
}

/// A running loopback cluster of daemon nodes. `None` slots are
/// crashed nodes awaiting [`LoopbackCluster::restart`].
pub struct LoopbackCluster {
    nodes: Vec<Option<Node>>,
    addrs: Vec<SocketAddr>,
    ctl: ConnCache,
    mirrors: Vec<WindowBuffer>,
    /// Open-window deadline per site plus its arming sequence number
    /// (the simulator's timer-id order; ties fire in arming order).
    deadlines: Vec<Option<(SimTime, u64)>>,
    next_arm: u64,
    t_max: SimTime,
    seed: u64,
    group: GroupConfig,
    durable: Option<DurableSetup>,
    replicas: usize,
    locate_cache: Option<usize>,
    /// WAN region topology shared by every node (DESIGN.md §17);
    /// `None` = flat cluster (the default everywhere).
    geo: Option<geo::Topology>,
    /// Final sent/received counters of permanently killed nodes
    /// ([`LoopbackCluster::kill_forever`]): their frames stay in the
    /// cluster-wide balance [`LoopbackCluster::quiesce`] checks even
    /// though the nodes no longer answer [`Frame::Status`].
    dead_sent: u64,
    dead_received: u64,
}

impl LoopbackCluster {
    /// Start `n` nodes (sites `0..n`) with the default group config.
    pub fn start(n: usize, seed: u64) -> io::Result<LoopbackCluster> {
        LoopbackCluster::start_with(n, seed, GroupConfig::default())
    }

    /// Start `n` nodes with an explicit group config. Site 0 bootstraps;
    /// the rest join through it one at a time, and the call returns only
    /// once every node reports full membership (so every ring replica is
    /// identical before any traffic flows).
    pub fn start_with(n: usize, seed: u64, group: GroupConfig) -> io::Result<LoopbackCluster> {
        LoopbackCluster::start_inner(n, seed, group, None, 1, None, None)
    }

    /// Start `n` nodes with a locate-answer cache of `capacity` entries
    /// on every node (DESIGN.md §15). Queries stay oracle-exact — every
    /// cache hit is revalidated against the holder's records — so the
    /// only observable differences are cost and the per-node cache
    /// counters ([`LoopbackCluster::query_load`]).
    pub fn start_cached(
        n: usize,
        seed: u64,
        group: GroupConfig,
        capacity: usize,
    ) -> io::Result<LoopbackCluster> {
        LoopbackCluster::start_inner(n, seed, group, None, 1, Some(capacity), None)
    }

    /// Start `n` nodes with replication factor `k`: every site's
    /// repository and gateway shards are copied onto its `k−1` ring
    /// successors, and up to `k−1` nodes can be
    /// [`LoopbackCluster::kill_forever`]'d with oracle-exact queries
    /// surviving. `k = 1` is identical to [`LoopbackCluster::start_with`].
    pub fn start_replicated(
        n: usize,
        seed: u64,
        group: GroupConfig,
        k: usize,
    ) -> io::Result<LoopbackCluster> {
        LoopbackCluster::start_inner(n, seed, group, None, k, None, None)
    }

    /// Start `n` nodes federated over a WAN region `topology`
    /// (DESIGN.md §17): every node derives its region from its site id,
    /// outbound dials pay the topology's base latency (test builds),
    /// and the harness can sever/heal region pairs
    /// ([`LoopbackCluster::region_cut`] /
    /// [`LoopbackCluster::region_heal`]). `k` is the replication factor
    /// (`1` = off), as [`LoopbackCluster::start_replicated`].
    pub fn start_geo(
        n: usize,
        seed: u64,
        group: GroupConfig,
        k: usize,
        topology: geo::Topology,
    ) -> io::Result<LoopbackCluster> {
        assert_eq!(topology.sites(), n, "topology must cover exactly the cluster's sites");
        LoopbackCluster::start_inner(n, seed, group, None, k, None, Some(topology))
    }

    /// Start `n` *durable* nodes: site `i` logs to `root/site-i` under
    /// the given fsync policy and snapshot cadence, and can be crashed
    /// and restarted ([`LoopbackCluster::crash`] /
    /// [`LoopbackCluster::restart`]).
    pub fn start_durable(
        n: usize,
        seed: u64,
        group: GroupConfig,
        root: &std::path::Path,
        fsync: FsyncMode,
        snapshot_every: u64,
    ) -> io::Result<LoopbackCluster> {
        let setup =
            DurableSetup { root: root.to_path_buf(), fsync, snapshot_every };
        LoopbackCluster::start_inner(n, seed, group, Some(setup), 1, None, None)
    }

    /// Durable nodes (as [`LoopbackCluster::start_durable`]) with a
    /// locate-answer cache of `capacity` entries on every node. The
    /// cache is engine-side and volatile: a crash/restart cycle rebuilds
    /// it cold while the WAL replays everything else.
    #[allow(clippy::too_many_arguments)]
    pub fn start_durable_cached(
        n: usize,
        seed: u64,
        group: GroupConfig,
        root: &std::path::Path,
        fsync: FsyncMode,
        snapshot_every: u64,
        capacity: usize,
    ) -> io::Result<LoopbackCluster> {
        let setup =
            DurableSetup { root: root.to_path_buf(), fsync, snapshot_every };
        LoopbackCluster::start_inner(n, seed, group, Some(setup), 1, Some(capacity), None)
    }

    fn start_inner(
        n: usize,
        seed: u64,
        group: GroupConfig,
        durable: Option<DurableSetup>,
        replicas: usize,
        locate_cache: Option<usize>,
        geo: Option<geo::Topology>,
    ) -> io::Result<LoopbackCluster> {
        assert!(n >= 1, "cluster needs at least one node");
        let mut cluster = LoopbackCluster {
            nodes: Vec::with_capacity(n),
            addrs: Vec::with_capacity(n),
            ctl: ConnCache::new(Backoff::default()),
            mirrors: (0..n).map(|i| WindowBuffer::new(site_id(i), group.n_max)).collect(),
            deadlines: vec![None; n],
            next_arm: 0,
            t_max: group.t_max,
            seed,
            group,
            durable,
            replicas: replicas.max(1),
            locate_cache,
            geo,
            dead_sent: 0,
            dead_received: 0,
        };
        for i in 0..n {
            let bootstrap = if i == 0 { None } else { Some(cluster.addrs[0]) };
            let node = Node::spawn(cluster.config_for(i, bootstrap))?;
            cluster.addrs.push(node.addr());
            cluster.nodes.push(Some(node));
            cluster.wait_members(i + 1)?;
        }
        Ok(cluster)
    }

    fn config_for(&self, i: usize, bootstrap: Option<SocketAddr>) -> NodeConfig {
        let mut cfg = NodeConfig::loopback(site_id(i), self.seed, bootstrap);
        cfg.group = self.group;
        if let Some(setup) = &self.durable {
            cfg.data_dir = Some(setup.root.join(format!("site-{i}")));
            cfg.fsync = setup.fsync;
            cfg.snapshot_every = setup.snapshot_every;
        }
        cfg.replicas = self.replicas;
        cfg.locate_cache = self.locate_cache;
        cfg.geo = self.geo.clone();
        cfg
    }

    /// Sever the region pair `(a, b)` cluster-wide: every live node
    /// parks its protocol frames across the pair until
    /// [`LoopbackCluster::region_heal`]. Geo clusters only. No quiesce
    /// needed — parked frames are excluded from the sent/received
    /// balance, so a cut cluster still quiesces between operations.
    pub fn region_cut(&mut self, a: u16, b: u16) -> io::Result<()> {
        assert!(self.geo.is_some(), "region_cut requires a geo cluster");
        assert_ne!(a, b, "a region cannot be cut from itself");
        self.broadcast_region(&Frame::RegionCut { a, b })
    }

    /// Heal the region pair `(a, b)`: every live node releases its
    /// parked frames in original order, then the harness waits for the
    /// released traffic to drain (quiesce).
    pub fn region_heal(&mut self, a: u16, b: u16) -> io::Result<()> {
        assert!(self.geo.is_some(), "region_heal requires a geo cluster");
        self.broadcast_region(&Frame::RegionHeal { a, b })?;
        self.quiesce()
    }

    fn broadcast_region(&mut self, frame: &Frame) -> io::Result<()> {
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_none() {
                continue;
            }
            let reply = self.ctl_request(site_id(i), frame)?;
            expect_ack(reply)?;
        }
        Ok(())
    }

    /// Read site `i`'s query-load accounting: `(loads, hits, misses)`
    /// where `loads` attributes each locate that node originated to the
    /// site that answered it, and the counters are its locate-cache's.
    /// Merging every node's `loads` reproduces the simulator's per-site
    /// served-locate tally.
    pub fn query_load(&mut self, i: usize) -> io::Result<(Vec<(SiteId, u64)>, u64, u64)> {
        match self.ctl_request(site_id(i), &Frame::QueryLoad)? {
            Frame::QueryLoadResp { loads, hits, misses } => Ok((loads, hits, misses)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected query-load reply: {other:?}"),
            )),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty cluster (never constructed by [`start`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The listener address of site `i`.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    fn ctl_request(&mut self, site: SiteId, frame: &Frame) -> io::Result<Frame> {
        let addr = self.addrs[site.0 as usize];
        let raw = self.ctl.request(addr, &frame.encode())?;
        Frame::decode(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Status of every *live* node (crashed slots are skipped — their
    /// counters are frozen on disk, not reachable over a socket).
    fn statuses(&mut self) -> io::Result<Vec<(u32, u64, u64)>> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_none() {
                continue;
            }
            match self.ctl_request(site_id(i), &Frame::Status)? {
                Frame::StatusResp { members, sent, received, .. } => {
                    out.push((members, sent, received));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected status reply: {other:?}"),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Poll until every running node reports `expect` members.
    fn wait_members(&mut self, expect: usize) -> io::Result<()> {
        let start = Instant::now();
        loop {
            let ok = self.statuses()?.iter().all(|&(m, _, _)| m as usize == expect);
            if ok {
                return Ok(());
            }
            if start.elapsed() > SETTLE_TIMEOUT {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("membership did not converge to {expect}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Wait until the protocol plane is drained: the cluster-wide sums
    /// of sent and received frames are equal and stable across two
    /// consecutive polls.
    pub fn quiesce(&mut self) -> io::Result<()> {
        let start = Instant::now();
        let mut prev: Option<(u64, u64)> = None;
        loop {
            let sums = self.statuses()?.iter().fold(
                (self.dead_sent, self.dead_received),
                |(s, r), &(_, ns, nr)| (s + ns, r + nr),
            );
            if sums.0 == sums.1 && prev == Some(sums) {
                return Ok(());
            }
            prev = Some(sums);
            if start.elapsed() > SETTLE_TIMEOUT {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("protocol plane did not quiesce: {sums:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Drive a workload schedule to completion: captures in time order,
    /// window flushes injected at the instants the simulator's `Tmax`
    /// timers would fire, trailing windows closed at their deadlines.
    /// Returns with the cluster quiescent.
    pub fn run_schedule(&mut self, events: &[CaptureEvent]) -> io::Result<()> {
        let mut cursor = ScheduleCursor::new(events);
        self.run_cursor(&mut cursor, usize::MAX)?;
        Ok(())
    }

    /// Advance a [`ScheduleCursor`] by at most `max_ops` operations (an
    /// operation is one capture injection or one timer flush), then
    /// quiesce. Returns the number performed — less than `max_ops`
    /// exactly when the schedule drained, `0` when it was already done.
    /// Because every return is quiescent, any boundary is a safe place
    /// to [`LoopbackCluster::crash`] a node.
    pub fn run_cursor(
        &mut self,
        cursor: &mut ScheduleCursor,
        max_ops: usize,
    ) -> io::Result<usize> {
        let mut ops = 0;
        while ops < max_ops {
            let due = self
                .deadlines
                .iter()
                .enumerate()
                .filter_map(|(s, d)| d.map(|(t, seq)| (t, seq, s)))
                .min();
            match (due, cursor.evs.get(cursor.i)) {
                // A timer fires strictly before the next capture. At a
                // tie the capture runs first: it was scheduled at t=0,
                // before the timer was armed, and the simulator's event
                // queue breaks ties by schedule order.
                (Some((t, _, s)), Some(e)) if t < e.at => self.fire_flush(s, t)?,
                (_, Some(e)) => {
                    let e = e.clone();
                    cursor.i += 1;
                    self.fire_capture(&e)?;
                }
                (Some((t, _, s)), None) => self.fire_flush(s, t)?,
                (None, None) => break,
            }
            ops += 1;
        }
        self.quiesce()?;
        Ok(ops)
    }

    fn fire_capture(&mut self, e: &CaptureEvent) -> io::Result<()> {
        let idx = e.site.0 as usize;
        let mut flushed_by_count = false;
        for &o in &e.objects {
            match self.mirrors[idx].push(o, e.at) {
                WindowEvent::ArmTimer => {
                    self.deadlines[idx] = Some((e.at + self.t_max, self.next_arm));
                    self.next_arm += 1;
                }
                WindowEvent::Buffered => {}
                WindowEvent::FlushByCount(_) => {
                    self.deadlines[idx] = None;
                    flushed_by_count = true;
                }
            }
        }
        let reply = self
            .ctl_request(e.site, &Frame::Capture { at: e.at, objects: e.objects.clone() })?;
        expect_ack(reply)?;
        if flushed_by_count {
            self.quiesce()?;
        }
        Ok(())
    }

    fn fire_flush(&mut self, idx: usize, now: SimTime) -> io::Result<()> {
        self.deadlines[idx] = None;
        let batch = self.mirrors[idx].flush(now);
        let reply = self.ctl_request(site_id(idx), &Frame::Flush { now })?;
        expect_ack(reply)?;
        if batch.is_some() {
            self.quiesce()?;
        }
        Ok(())
    }

    /// `L(o, t)` asked at `origin`, over the real sockets.
    pub fn locate(
        &mut self,
        origin: SiteId,
        object: ObjectId,
        t: SimTime,
    ) -> io::Result<(Option<SiteId>, CostWire, bool)> {
        match self.ctl_request(origin, &Frame::Locate { object, t })? {
            Frame::LocateResp { answer, cost, complete } => Ok((answer, cost, complete)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected locate reply: {other:?}"),
            )),
        }
    }

    /// `TR(o, t0, t1)` asked at `origin`, over the real sockets.
    pub fn trace(
        &mut self,
        origin: SiteId,
        object: ObjectId,
        t0: SimTime,
        t1: SimTime,
    ) -> io::Result<(Path, CostWire, bool)> {
        match self.ctl_request(origin, &Frame::Trace { object, t0, t1 })? {
            Frame::TraceResp { path, cost, complete } => Ok((path, cost, complete)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected trace reply: {other:?}"),
            )),
        }
    }

    /// Kill node `i` abruptly (no final snapshot, no WAL sync, volatile
    /// state abandoned) and collect the report of its dead life. The
    /// slot stays empty until [`LoopbackCluster::restart`].
    pub fn crash(&mut self, i: usize) -> io::Result<NodeReport> {
        let node = self.nodes[i].take().expect("crash of a live node");
        let reply = self.ctl_request(site_id(i), &Frame::Crash)?;
        expect_ack(reply)?;
        Ok(node.join())
    }

    /// Kill node `i` **forever**: flush its open capture window (its
    /// observations must reach the index before it dies, exactly like
    /// the simulator's `kill_forever`), quiesce, crash it, then
    /// broadcast [`Frame::PeerDead`] so every survivor drops it from
    /// the membership, fails its key ranges over to the heir and
    /// re-establishes replica placement. The slot stays empty for good
    /// — no restart. Requires a replicated cluster (`k > 1`).
    pub fn kill_forever(&mut self, i: usize) -> io::Result<NodeReport> {
        assert!(self.replicas > 1, "kill_forever requires a replicated cluster");
        if let Some((t, _)) = self.deadlines[i] {
            self.fire_flush(i, t)?;
        }
        self.quiesce()?;
        let node = self.nodes[i].take().expect("kill_forever of a live node");
        let reply = self.ctl_request(site_id(i), &Frame::Crash)?;
        expect_ack(reply)?;
        let report = node.join();
        self.dead_sent += report.sent;
        self.dead_received += report.received;
        let live: Vec<usize> =
            (0..self.nodes.len()).filter(|&j| self.nodes[j].is_some()).collect();
        for &j in &live {
            let reply = self.ctl_request(site_id(j), &Frame::PeerDead { site: site_id(i) })?;
            expect_ack(reply)?;
        }
        self.wait_members(live.len())?;
        self.quiesce()?;
        Ok(report)
    }

    /// Restart a crashed node from its data directory. The node binds a
    /// fresh ephemeral port, recovers snapshot + WAL tail, and rejoins
    /// through any live peer; the call returns only once every live
    /// peer resolves the site to its new address (so no subsequent
    /// message dials the dead one). Durable clusters only.
    pub fn restart(&mut self, i: usize) -> io::Result<()> {
        assert!(self.nodes[i].is_none(), "restart of a live node");
        assert!(self.durable.is_some(), "restart requires a durable cluster");
        let bootstrap = self
            .nodes
            .iter()
            .enumerate()
            .find(|(j, n)| *j != i && n.is_some())
            .map(|(j, _)| self.addrs[j]);
        let node = Node::spawn(self.config_for(i, bootstrap))?;
        self.addrs[i] = node.addr();
        self.nodes[i] = Some(node);
        self.wait_addr_convergence(i)
    }

    /// The canonical state encoding of node `i` (addresses excluded),
    /// fetched over the socket.
    pub fn state_dump(&mut self, i: usize) -> io::Result<Vec<u8>> {
        match self.ctl_request(site_id(i), &Frame::StateDump)? {
            Frame::StateResp(state) => Ok(state),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected state dump reply: {other:?}"),
            )),
        }
    }

    /// Poll every live peer until it resolves site `i` to the address
    /// the cluster has on file (i.e. the rejoin broadcast landed).
    fn wait_addr_convergence(&mut self, i: usize) -> io::Result<()> {
        let want = self.addrs[i].to_string();
        let peers: Vec<usize> = (0..self.nodes.len())
            .filter(|&j| j != i && self.nodes[j].is_some())
            .collect();
        let start = Instant::now();
        loop {
            let mut ok = true;
            for &j in &peers {
                let resolve = Frame::Resolve { site: site_id(i) };
                match self.ctl_request(site_id(j), &resolve)? {
                    Frame::AddrResp(Some(a)) if a == want => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                return Ok(());
            }
            if start.elapsed() > SETTLE_TIMEOUT {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("peers did not learn site {i}'s new address"),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stop every live node and collect its report (metrics, anomalies,
    /// latency recorder), in site order. Crashed, un-restarted nodes
    /// already returned their report from [`LoopbackCluster::crash`].
    pub fn shutdown(mut self) -> io::Result<Vec<NodeReport>> {
        let mut reports = Vec::with_capacity(self.nodes.len());
        let nodes = std::mem::take(&mut self.nodes);
        for node in nodes.into_iter().flatten() {
            let reply = self.ctl_request(node.site(), &Frame::Shutdown)?;
            expect_ack(reply)?;
            reports.push(node.join());
        }
        self.ctl.close_all();
        Ok(reports)
    }
}

fn expect_ack(reply: Frame) -> io::Result<()> {
    match reply {
        Frame::Ack => Ok(()),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected ack, got {other:?}"),
        )),
    }
}
