//! Query-path read scaling: locate-answer caching and hot-shard load
//! statistics.
//!
//! Under skewed (Zipf / flash-crowd) locate traffic, the gateway that
//! owns a hot object's prefix serves a disproportionate share of the
//! query load. This crate holds the two pieces the read-scaling
//! subsystem shares between the simulator and the daemon:
//!
//! * [`LocateCache`] — a bounded per-node cache of locate answers,
//!   keyed by [`ObjectId`] and guarded by a movement *epoch*: a cached
//!   answer is served only while its epoch matches the object's current
//!   one, so any movement that changes the authoritative answer kills
//!   the entry by bumping the epoch ([`EpochTable`]). Eviction is
//!   deterministic LRU (a monotone tick orders entries totally), which
//!   keeps same-seed simulation runs bit-reproducible.
//! * [`Imbalance`] — the hot-shard statistic (max/mean/p99 of per-node
//!   served-locate counts) both `zipf_sweep` and `fault_sweep` report.
//!
//! The cache is deliberately **not durable**: it is derived state,
//! reconstructible from traffic, and persisting it would force
//! snapshot/WAL invalidation protocols for no recovery benefit — a
//! restarted node simply rebuilds it cold (DESIGN.md §15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use moods::ObjectId;
use std::collections::{BTreeSet, HashMap};

// ----------------------------------------------------------------------
// Epochs
// ----------------------------------------------------------------------

/// Per-object movement epochs: a monotone counter bumped every time the
/// authoritative locate answer for an object changes. Objects never
/// bumped are at epoch 0, so the table stays proportional to the number
/// of *moved* objects, not the population.
#[derive(Clone, Debug, Default)]
pub struct EpochTable {
    epochs: HashMap<ObjectId, u64>,
}

impl EpochTable {
    /// An empty table (every object at epoch 0).
    pub fn new() -> EpochTable {
        EpochTable::default()
    }

    /// The current epoch of `o`.
    pub fn of(&self, o: ObjectId) -> u64 {
        self.epochs.get(&o).copied().unwrap_or(0)
    }

    /// Advance `o`'s epoch, invalidating every cached answer carrying
    /// the previous one. Returns the new epoch.
    pub fn bump(&mut self, o: ObjectId) -> u64 {
        let e = self.epochs.entry(o).or_insert(0);
        *e += 1;
        *e
    }

    /// Number of objects ever bumped.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// True when no object was ever bumped.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }
}

// ----------------------------------------------------------------------
// The cache
// ----------------------------------------------------------------------

/// Counters describing a cache's life so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that found no entry (stale hits count here too).
    pub misses: u64,
    /// Lookups that found an entry killed by an epoch mismatch.
    pub stale: u64,
    /// Entries stored (including overwrites).
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

#[derive(Clone, Debug)]
struct Slot<V> {
    value: V,
    epoch: u64,
    tick: u64,
}

/// A bounded per-node locate-answer cache with epoch invalidation and
/// deterministic LRU eviction.
///
/// `V` is the cached answer (the simulator and daemon both store the
/// gateway's latest `Link`); the cache itself only needs to clone it
/// out. Every mutation is deterministic: recency is a monotone `u64`
/// tick, so the eviction order is a total order independent of hash
/// iteration — two same-seed runs evict identically.
#[derive(Clone, Debug)]
pub struct LocateCache<V> {
    capacity: usize,
    entries: HashMap<ObjectId, Slot<V>>,
    /// `(tick, object)` pairs mirroring `entries`; the smallest tick is
    /// the least recently used entry.
    order: BTreeSet<(u64, ObjectId)>,
    next_tick: u64,
    stats: CacheStats,
}

impl<V: Clone> LocateCache<V> {
    /// An empty cache bounded at `capacity ≥ 1` entries.
    pub fn new(capacity: usize) -> LocateCache<V> {
        assert!(capacity >= 1, "locate cache capacity must be at least 1");
        LocateCache {
            capacity,
            entries: HashMap::new(),
            order: BTreeSet::new(),
            next_tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up `o` at the current `epoch`. A live entry (epoch matches)
    /// is a hit and refreshes recency; an entry at a stale epoch is
    /// removed and counted as a miss.
    pub fn get(&mut self, o: ObjectId, epoch: u64) -> Option<V> {
        match self.entries.get_mut(&o) {
            Some(slot) if slot.epoch == epoch => {
                self.order.remove(&(slot.tick, o));
                slot.tick = self.next_tick;
                self.next_tick += 1;
                self.order.insert((slot.tick, o));
                self.stats.hits += 1;
                Some(slot.value.clone())
            }
            Some(_) => {
                let slot = self.entries.remove(&o).expect("entry just matched");
                self.order.remove(&(slot.tick, o));
                self.stats.stale += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store the answer for `o` at `epoch`, replacing any previous
    /// entry and evicting the least recently used one when full.
    pub fn insert(&mut self, o: ObjectId, epoch: u64, value: V) {
        if let Some(old) = self.entries.remove(&o) {
            self.order.remove(&(old.tick, o));
        } else if self.entries.len() == self.capacity {
            let &(tick, victim) = self.order.iter().next().expect("full cache is non-empty");
            self.order.remove(&(tick, victim));
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.entries.insert(o, Slot { value, epoch, tick });
        self.order.insert((tick, o));
        self.stats.insertions += 1;
    }

    /// Drop `o`'s entry, if any (local knowledge of a movement).
    pub fn invalidate(&mut self, o: ObjectId) {
        if let Some(slot) = self.entries.remove(&o) {
            self.order.remove(&(slot.tick, o));
        }
    }

    /// Drop every entry (membership change: ownership may have moved
    /// wholesale, so conservative correctness beats retained warmth).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

// ----------------------------------------------------------------------
// Load-imbalance statistics
// ----------------------------------------------------------------------

/// The hot-shard statistic over per-node served-query counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Imbalance {
    /// Hottest node's load.
    pub max: u64,
    /// Mean load over *all* nodes (idle ones included).
    pub mean: f64,
    /// 99th-percentile load (nearest-rank over the node population).
    pub p99: u64,
    /// `max / mean` — 1.0 is perfectly balanced; large values mean one
    /// node carries the cluster. 0.0 when no load was served at all.
    pub ratio: f64,
}

/// Compute the imbalance statistic of a per-node load vector.
pub fn imbalance(loads: &[u64]) -> Imbalance {
    if loads.is_empty() {
        return Imbalance { max: 0, mean: 0.0, p99: 0, ratio: 0.0 };
    }
    let max = *loads.iter().max().expect("non-empty");
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / loads.len() as f64;
    let ratio = if mean > 0.0 { max as f64 / mean } else { 0.0 };
    Imbalance { max, mean, p99: percentile(loads, 0.99), ratio }
}

/// Nearest-rank percentile (`p` in `(0, 1]`) of a load vector.
pub fn percentile(loads: &[u64], p: f64) -> u64 {
    if loads.is_empty() {
        return 0;
    }
    let mut sorted = loads.to_vec();
    sorted.sort_unstable();
    let rank = (p * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId::from_raw(format!("qcache-test-{n}").as_bytes())
    }

    #[test]
    fn epoch_table_starts_at_zero_and_bumps() {
        let mut t = EpochTable::new();
        assert_eq!(t.of(obj(1)), 0);
        assert!(t.is_empty());
        assert_eq!(t.bump(obj(1)), 1);
        assert_eq!(t.bump(obj(1)), 2);
        assert_eq!(t.of(obj(1)), 2);
        assert_eq!(t.of(obj(2)), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hit_miss_and_stale_accounting() {
        let mut c: LocateCache<u32> = LocateCache::new(4);
        assert_eq!(c.get(obj(1), 0), None);
        c.insert(obj(1), 0, 77);
        assert_eq!(c.get(obj(1), 0), Some(77));
        // Epoch moved on: the entry dies and the lookup is a miss.
        assert_eq!(c.get(obj(1), 1), None);
        assert_eq!(c.get(obj(1), 1), None); // really gone
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stale), (1, 3, 1));
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_is_deterministic_and_recency_aware() {
        let mut c: LocateCache<u32> = LocateCache::new(2);
        c.insert(obj(1), 0, 1);
        c.insert(obj(2), 0, 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(obj(1), 0), Some(1));
        c.insert(obj(3), 0, 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(obj(2), 0), None, "LRU entry evicted");
        assert_eq!(c.get(obj(1), 0), Some(1));
        assert_eq!(c.get(obj(3), 0), Some(3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c: LocateCache<u32> = LocateCache::new(2);
        c.insert(obj(1), 0, 1);
        c.insert(obj(2), 0, 2);
        c.insert(obj(1), 1, 10); // replace, not insert-beyond-capacity
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(obj(1), 1), Some(10));
        assert_eq!(c.get(obj(2), 0), Some(2));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c: LocateCache<u32> = LocateCache::new(4);
        c.insert(obj(1), 0, 1);
        c.insert(obj(2), 0, 2);
        c.invalidate(obj(1));
        c.invalidate(obj(9)); // absent: no-op
        assert_eq!(c.get(obj(1), 0), None);
        assert_eq!(c.get(obj(2), 0), Some(2));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(obj(2), 0), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = LocateCache::<u32>::new(0);
    }

    #[test]
    fn imbalance_statistics() {
        let i = imbalance(&[]);
        assert_eq!((i.max, i.p99), (0, 0));
        assert_eq!(i.ratio, 0.0);

        let i = imbalance(&[4, 4, 4, 4]);
        assert_eq!(i.max, 4);
        assert_eq!(i.mean, 4.0);
        assert_eq!(i.ratio, 1.0);

        let i = imbalance(&[0, 0, 0, 12]);
        assert_eq!(i.max, 12);
        assert_eq!(i.mean, 3.0);
        assert_eq!(i.ratio, 4.0);
        assert_eq!(i.p99, 12);

        let all_zero = imbalance(&[0, 0]);
        assert_eq!(all_zero.ratio, 0.0, "no load served: ratio defined as 0");
    }

    #[test]
    fn percentile_nearest_rank() {
        let loads: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&loads, 0.99), 99);
        assert_eq!(percentile(&loads, 0.50), 50);
        assert_eq!(percentile(&loads, 1.0), 100);
        assert_eq!(percentile(&[7], 0.99), 7);
    }
}
