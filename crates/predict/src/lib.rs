//! Predictive object tracking — the paper's §VII future work:
//! "add capabilities for predicting future status of objects ... using
//! statistical and probabilistic techniques".
//!
//! The model is deliberately the simplest thing that answers the future
//! query `L(o, t_future)` probabilistically:
//!
//! * a **first-order Markov chain** over sites, fitted from historical
//!   MOODS paths (site → site transition counts, §II-B's path domain);
//! * a per-site **dwell-time distribution** (empirical mean, used as the
//!   rate of an exponential holding time);
//! * prediction by **Monte-Carlo rollout**: from the object's current
//!   site and elapsed dwell, sample holding times and transitions up to
//!   the horizon; the empirical distribution over end sites is the
//!   answer.
//!
//! Everything is deterministic given the caller's RNG, so predictions
//! are reproducible in tests and experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use moods::{Path, SiteId};
use detrand::Rng;
use simnet::SimTime;
use std::collections::HashMap;

/// A fitted movement model.
#[derive(Clone, Debug, Default)]
pub struct TransitionModel {
    /// `counts[a][b]` = observed moves a → b.
    counts: HashMap<SiteId, HashMap<SiteId, u64>>,
    /// Sum of closed dwell durations and their count, per site.
    dwell: HashMap<SiteId, (u64, u64)>,
    /// Observed terminations (object's path ends at this site so far).
    terminal: HashMap<SiteId, u64>,
}

impl TransitionModel {
    /// Empty model (predicts "stays put" everywhere).
    pub fn new() -> TransitionModel {
        TransitionModel::default()
    }

    /// Fold one historical path into the model.
    pub fn observe(&mut self, path: &Path) {
        for w in path.windows(2) {
            *self
                .counts
                .entry(w[0].site)
                .or_default()
                .entry(w[1].site)
                .or_default() += 1;
        }
        for v in path {
            if let Some(d) = v.departed {
                let e = self.dwell.entry(v.site).or_default();
                e.0 += d.since(v.arrived).as_micros();
                e.1 += 1;
            }
        }
        if let Some(last) = path.last() {
            if last.departed.is_none() {
                *self.terminal.entry(last.site).or_default() += 1;
            }
        }
    }

    /// Fit a model from a corpus of paths.
    pub fn fit(paths: &[Path]) -> TransitionModel {
        let mut m = TransitionModel::new();
        for p in paths {
            m.observe(p);
        }
        m
    }

    /// Number of observed transitions out of `site`.
    pub fn out_degree(&self, site: SiteId) -> u64 {
        self.counts.get(&site).map(|m| m.values().sum()).unwrap_or(0)
    }

    /// Next-site distribution from `site`, most probable first.
    /// Empty when the site was never seen to forward anything.
    pub fn next_distribution(&self, site: SiteId) -> Vec<(SiteId, f64)> {
        let Some(row) = self.counts.get(&site) else {
            return Vec::new();
        };
        let total: u64 = row.values().sum();
        let mut out: Vec<(SiteId, f64)> =
            row.iter().map(|(s, c)| (*s, *c as f64 / total as f64)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("probabilities are finite").then(a.0.cmp(&b.0)));
        out
    }

    /// Probability that an object at `site` has reached the end of its
    /// journey (estimated from observed open-ended path terminations).
    pub fn terminal_probability(&self, site: SiteId) -> f64 {
        let ends = *self.terminal.get(&site).unwrap_or(&0);
        let moves = self.out_degree(site);
        if ends + moves == 0 {
            return 1.0; // never seen: assume it stays
        }
        ends as f64 / (ends + moves) as f64
    }

    /// Mean dwell at `site`; `None` if no closed visit was observed.
    pub fn mean_dwell(&self, site: SiteId) -> Option<SimTime> {
        let (total, n) = self.dwell.get(&site)?;
        if *n == 0 {
            return None;
        }
        Some(SimTime::from_micros(total / n))
    }

    /// Predict where an object will be `horizon` from now, given it is
    /// currently at `site` and has already dwelt `elapsed` there.
    /// Returns the site distribution from `rollouts` Monte-Carlo runs,
    /// most probable first.
    pub fn predict<R: Rng + ?Sized>(
        &self,
        site: SiteId,
        elapsed: SimTime,
        horizon: SimTime,
        rollouts: u32,
        rng: &mut R,
    ) -> Vec<(SiteId, f64)> {
        assert!(rollouts > 0, "need at least one rollout");
        let mut tally: HashMap<SiteId, u32> = HashMap::new();
        for _ in 0..rollouts {
            let end = self.rollout(site, elapsed, horizon, rng);
            *tally.entry(end).or_default() += 1;
        }
        let mut out: Vec<(SiteId, f64)> = tally
            .into_iter()
            .map(|(s, c)| (s, c as f64 / rollouts as f64))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }

    /// One sampled trajectory; returns the site at the horizon.
    fn rollout<R: Rng + ?Sized>(
        &self,
        mut site: SiteId,
        elapsed: SimTime,
        horizon: SimTime,
        rng: &mut R,
    ) -> SiteId {
        let mut remaining = horizon.as_micros() as f64;
        let mut first = true;
        // Bound the walk: horizons only ever span a bounded number of
        // hops in practice; 64 protects against degenerate zero dwells.
        for _ in 0..64 {
            if rng.gen::<f64>() < self.terminal_probability(site) {
                return site; // journey ends here
            }
            let Some(mean) = self.mean_dwell(site) else {
                return site; // no dwell data: cannot predict a departure
            };
            // Exponential holding time with the observed mean; memoryless,
            // so elapsed dwell only matters through the first sample's
            // conditioning (memorylessness makes it a no-op — document
            // the assumption by consuming `elapsed` only as a flag).
            let _ = (first, elapsed);
            first = false;
            let mean_us = (mean.as_micros() as f64).max(1.0);
            let u: f64 = rng.gen_range(1e-12..1.0);
            let hold = -u.ln() * mean_us;
            if hold >= remaining {
                return site;
            }
            remaining -= hold;

            let dist = self.next_distribution(site);
            if dist.is_empty() {
                return site;
            }
            let mut draw: f64 = rng.gen();
            let mut chosen = dist[dist.len() - 1].0;
            for (s, p) in &dist {
                if draw < *p {
                    chosen = *s;
                    break;
                }
                draw -= p;
            }
            site = chosen;
        }
        site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moods::Visit;
    use proptiny::prelude::*;
    use detrand::{rngs::StdRng, SeedableRng};
    use simnet::time::secs;

    fn visit(site: u32, arrived: u64, departed: Option<u64>) -> Visit {
        Visit { site: SiteId(site), arrived: secs(arrived), departed: departed.map(secs) }
    }

    /// A corpus of linear paths 0 → 1 → 2 with 100 s dwells.
    fn linear_corpus(n: usize) -> Vec<Path> {
        (0..n)
            .map(|_| {
                vec![
                    visit(0, 0, Some(100)),
                    visit(1, 100, Some(200)),
                    visit(2, 200, None),
                ]
            })
            .collect()
    }

    #[test]
    fn deterministic_chain_predicts_certainly() {
        let m = TransitionModel::fit(&linear_corpus(50));
        assert_eq!(m.next_distribution(SiteId(0)), vec![(SiteId(1), 1.0)]);
        assert_eq!(m.next_distribution(SiteId(1)), vec![(SiteId(2), 1.0)]);
        assert!(m.next_distribution(SiteId(2)).is_empty());
        assert_eq!(m.mean_dwell(SiteId(0)), Some(secs(100)));
        // Site 2 is always terminal.
        assert!((m.terminal_probability(SiteId(2)) - 1.0).abs() < 1e-9);
        assert!(m.terminal_probability(SiteId(0)) < 1e-9);
    }

    #[test]
    fn long_horizon_ends_at_absorbing_site() {
        let m = TransitionModel::fit(&linear_corpus(50));
        let mut rng = StdRng::seed_from_u64(1);
        // Horizon far beyond total journey: everything ends at site 2.
        let dist = m.predict(SiteId(0), SimTime::ZERO, secs(1_000_000), 200, &mut rng);
        assert_eq!(dist[0].0, SiteId(2));
        assert!(dist[0].1 > 0.99, "got {dist:?}");
    }

    #[test]
    fn zero_horizon_stays_put() {
        let m = TransitionModel::fit(&linear_corpus(10));
        let mut rng = StdRng::seed_from_u64(2);
        let dist = m.predict(SiteId(1), SimTime::ZERO, SimTime::ZERO, 100, &mut rng);
        assert_eq!(dist, vec![(SiteId(1), 1.0)]);
    }

    #[test]
    fn medium_horizon_spreads_over_route() {
        let m = TransitionModel::fit(&linear_corpus(50));
        let mut rng = StdRng::seed_from_u64(3);
        // Horizon ≈ one mean dwell: mass mostly on sites 0 and 1.
        let dist = m.predict(SiteId(0), SimTime::ZERO, secs(100), 2_000, &mut rng);
        let p: HashMap<SiteId, f64> = dist.into_iter().collect();
        let p0 = p.get(&SiteId(0)).copied().unwrap_or(0.0);
        let p1 = p.get(&SiteId(1)).copied().unwrap_or(0.0);
        assert!(p0 > 0.2 && p1 > 0.2, "p0={p0} p1={p1}");
        // Exponential(100s) over a 100s horizon: P(no move) = e^-1 ≈ .37,
        // P(exactly one move) ≈ .37 too; allow generous slack.
        assert!((p0 - 0.37).abs() < 0.1, "p0={p0}");
    }

    #[test]
    fn branching_chain_probabilities_follow_counts() {
        // 0 → 1 (3 times), 0 → 2 (once).
        let mut paths = vec![];
        for _ in 0..3 {
            paths.push(vec![visit(0, 0, Some(10)), visit(1, 10, None)]);
        }
        paths.push(vec![visit(0, 0, Some(10)), visit(2, 10, None)]);
        let m = TransitionModel::fit(&paths);
        let d = m.next_distribution(SiteId(0));
        assert_eq!(d[0], (SiteId(1), 0.75));
        assert_eq!(d[1], (SiteId(2), 0.25));
    }

    #[test]
    fn unseen_site_is_a_fixpoint() {
        let m = TransitionModel::fit(&linear_corpus(5));
        let mut rng = StdRng::seed_from_u64(4);
        let dist = m.predict(SiteId(99), SimTime::ZERO, secs(10_000), 50, &mut rng);
        assert_eq!(dist, vec![(SiteId(99), 1.0)]);
    }

    proptiny! {
        #[test]
        fn prop_distribution_sums_to_one(
            routes in prop::collection::vec(
                prop::collection::vec(0u32..6, 2..6), 1..20),
            horizon in 0u64..10_000,
        ) {
            let mut paths: Vec<Path> = Vec::new();
            for r in &routes {
                let mut t = 0u64;
                let mut path = Vec::new();
                for (i, s) in r.iter().enumerate() {
                    let departed = (i + 1 < r.len()).then(|| t + 50);
                    path.push(visit(*s, t, departed));
                    t += 50;
                }
                paths.push(path);
            }
            let m = TransitionModel::fit(&paths);
            let mut rng = StdRng::seed_from_u64(7);
            let dist = m.predict(SiteId(routes[0][0]), SimTime::ZERO, secs(horizon), 100, &mut rng);
            let total: f64 = dist.iter().map(|(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(dist.iter().all(|(_, p)| *p > 0.0 && *p <= 1.0));
            // Sorted descending.
            prop_assert!(dist.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }
}
