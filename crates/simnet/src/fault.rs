//! Deterministic fault injection for the delivery path.
//!
//! The paper's correctness story — the IOP doubly-linked list (§II-C) and
//! the Data Triangle prefix consistency (§IV-A.2) — is argued over clean
//! executions; Chord \[26\] and the epidemic estimator \[14\] are only
//! *probabilistically* correct under message loss. This module makes loss
//! a first-class, replayable input: a [`FaultPlane`] can drop, duplicate
//! or jitter-delay every link-level delivery and mark nodes as crashed,
//! all from its **own** seeded RNG.
//!
//! Two properties matter for the experiments:
//!
//! * **Zero-cost when off.** A `Sim` without a fault plane takes no extra
//!   RNG draws and schedules exactly the same events, so fault-free runs
//!   stay byte-identical to pre-fault-plane builds.
//! * **Byte-identical replay.** The plane owns a dedicated `StdRng`
//!   seeded from [`FaultConfig::seed`]; given the same workload and the
//!   same fault config, every drop/duplicate/jitter decision — and thus
//!   the whole faulty execution — replays exactly.

use crate::sim::NodeIndex;
use crate::time::SimTime;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Fault rates for one directed link (or the all-links default).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a delivery is silently dropped.
    pub drop: f64,
    /// Probability in `[0, 1]` that a delivery is duplicated (two copies
    /// arrive, each with its own jitter draw).
    pub duplicate: f64,
    /// Upper bound on extra uniformly-drawn delivery delay. `ZERO`
    /// disables jitter (and its RNG draw).
    pub jitter: SimTime,
}

impl LinkFaults {
    /// A perfectly reliable link.
    pub const NONE: LinkFaults =
        LinkFaults { drop: 0.0, duplicate: 0.0, jitter: SimTime::ZERO };

    /// Drop-only faults at probability `p`.
    pub fn drop_rate(p: f64) -> LinkFaults {
        LinkFaults { drop: p, ..LinkFaults::NONE }
    }

    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.drop), "drop out of range");
        assert!((0.0..=1.0).contains(&self.duplicate), "duplicate out of range");
    }
}

/// Configuration for a [`FaultPlane`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed for the plane's dedicated RNG. Independent of the engine
    /// seed so the same fault schedule can be replayed under different
    /// latency draws (and vice versa).
    pub seed: u64,
    /// Faults applied to every link without an override.
    pub default: LinkFaults,
    /// Per-directed-link overrides, keyed by `(from, to)`.
    pub links: HashMap<(NodeIndex, NodeIndex), LinkFaults>,
}

impl FaultConfig {
    /// A plane with no faults (useful when only crash injection is
    /// wanted).
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig { seed, default: LinkFaults::NONE, links: HashMap::new() }
    }

    /// Uniform drop probability on every link.
    pub fn uniform_drop(seed: u64, p: f64) -> FaultConfig {
        FaultConfig { seed, default: LinkFaults::drop_rate(p), links: HashMap::new() }
    }

    /// Replace the all-links default.
    pub fn with_default(mut self, faults: LinkFaults) -> FaultConfig {
        self.default = faults;
        self
    }

    /// Override faults for one directed link.
    pub fn with_link(mut self, from: NodeIndex, to: NodeIndex, faults: LinkFaults) -> FaultConfig {
        self.links.insert((from, to), faults);
        self
    }
}

/// Counters describing what the plane actually did.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultStats {
    /// Deliveries that arrived (duplicated copies counted individually).
    pub delivered: u64,
    /// Deliveries silently dropped by link faults.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Deliveries that received non-zero jitter.
    pub jittered: u64,
    /// Deliveries discarded because the destination had crashed.
    pub to_crashed: u64,
}

impl FaultStats {
    /// Fraction of attempted deliveries that arrived, in `[0, 1]`;
    /// `1.0` when nothing was attempted.
    pub fn delivery_rate(&self) -> f64 {
        let attempted = self.delivered + self.dropped + self.to_crashed;
        if attempted == 0 {
            1.0
        } else {
            self.delivered as f64 / attempted as f64
        }
    }
}

/// The verdict for one attempted delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// How many copies to deliver (0 = dropped, 1 = normal, 2 = duplicated).
    pub copies: u8,
    /// Extra delay for each copy (index 0 and 1).
    pub extra_delay: [SimTime; 2],
}

/// Seeded fault-injection state consulted by `Sim::send`.
pub struct FaultPlane {
    default: LinkFaults,
    links: HashMap<(NodeIndex, NodeIndex), LinkFaults>,
    crashed: HashSet<NodeIndex>,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultPlane {
    /// Build a plane from its config.
    pub fn new(cfg: FaultConfig) -> FaultPlane {
        cfg.default.validate();
        for f in cfg.links.values() {
            f.validate();
        }
        FaultPlane {
            default: cfg.default,
            links: cfg.links,
            crashed: HashSet::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: FaultStats::default(),
        }
    }

    fn faults_for(&self, from: NodeIndex, to: NodeIndex) -> LinkFaults {
        self.links.get(&(from, to)).copied().unwrap_or(self.default)
    }

    /// Mark `node` crashed: every future delivery to it is discarded.
    /// (In-flight deliveries are checked again at delivery time, so a
    /// crash takes effect immediately, mid-protocol.)
    pub fn crash(&mut self, node: NodeIndex) {
        self.crashed.insert(node);
    }

    /// Has `node` been crashed?
    pub fn is_crashed(&self, node: NodeIndex) -> bool {
        self.crashed.contains(&node)
    }

    /// Record a delivery discarded at delivery time because the
    /// destination crashed after the message was sent.
    pub(crate) fn note_delivery_to_crashed(&mut self) {
        self.stats.to_crashed += 1;
        // The copy was counted as delivered at send time (saturating:
        // local self-deliveries never went through `judge`).
        self.stats.delivered = self.stats.delivered.saturating_sub(1);
    }

    /// Decide the fate of one delivery `from -> to`. Draw order is fixed
    /// (drop, duplicate, then one jitter per copy) so executions replay
    /// byte-identically.
    pub fn judge(&mut self, from: NodeIndex, to: NodeIndex) -> Verdict {
        if self.crashed.contains(&to) || self.crashed.contains(&from) {
            self.stats.to_crashed += 1;
            return Verdict { copies: 0, extra_delay: [SimTime::ZERO; 2] };
        }
        let f = self.faults_for(from, to);
        if f.drop > 0.0 && self.rng.gen_bool(f.drop) {
            self.stats.dropped += 1;
            return Verdict { copies: 0, extra_delay: [SimTime::ZERO; 2] };
        }
        let copies = if f.duplicate > 0.0 && self.rng.gen_bool(f.duplicate) {
            self.stats.duplicated += 1;
            2u8
        } else {
            1u8
        };
        let mut extra_delay = [SimTime::ZERO; 2];
        for slot in extra_delay.iter_mut().take(copies as usize) {
            if f.jitter > SimTime::ZERO {
                let us = self.rng.gen_range(0..=f.jitter.as_micros());
                if us > 0 {
                    self.stats.jittered += 1;
                }
                *slot = SimTime::from_micros(us);
            }
        }
        self.stats.delivered += copies as u64;
        Verdict { copies, extra_delay }
    }

    /// Sample whether a single synchronous (RPC-style) transfer
    /// `from -> to` is lost. Used by protocol code whose exchanges do not
    /// go through the event queue (e.g. the triangle refresh fetch).
    pub fn sample_loss(&mut self, from: NodeIndex, to: NodeIndex) -> bool {
        if self.crashed.contains(&to) || self.crashed.contains(&from) {
            self.stats.to_crashed += 1;
            return true;
        }
        let f = self.faults_for(from, to);
        let lost = f.drop > 0.0 && self.rng.gen_bool(f.drop);
        if lost {
            self.stats.dropped += 1;
        } else {
            self.stats.delivered += 1;
        }
        lost
    }

    /// Drop probability of the all-links default (the estimator uses it
    /// to model gossip under the same loss regime).
    pub fn default_drop(&self) -> f64 {
        self.default.drop
    }

    /// What the plane has done so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ms;

    #[test]
    fn clean_plane_delivers_everything() {
        let mut p = FaultPlane::new(FaultConfig::none(1));
        for _ in 0..100 {
            assert_eq!(p.judge(0, 1), Verdict { copies: 1, extra_delay: [SimTime::ZERO; 2] });
        }
        assert_eq!(p.stats().delivered, 100);
        assert_eq!(p.stats().dropped, 0);
        assert_eq!(p.stats().delivery_rate(), 1.0);
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut p = FaultPlane::new(FaultConfig::uniform_drop(7, 0.3));
        for _ in 0..10_000 {
            p.judge(0, 1);
        }
        let rate = p.stats().dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed drop rate {rate}");
    }

    #[test]
    fn duplication_and_jitter_bounds() {
        let cfg = FaultConfig::none(3).with_default(LinkFaults {
            drop: 0.0,
            duplicate: 0.5,
            jitter: ms(20),
        });
        let mut p = FaultPlane::new(cfg);
        let mut dup = 0;
        for _ in 0..2_000 {
            let v = p.judge(4, 5);
            assert!(v.copies >= 1);
            if v.copies == 2 {
                dup += 1;
            }
            for d in &v.extra_delay[..v.copies as usize] {
                assert!(*d <= ms(20));
            }
        }
        assert!((800..1_200).contains(&dup), "duplications {dup}");
    }

    #[test]
    fn per_link_override_beats_default() {
        let cfg = FaultConfig::uniform_drop(9, 1.0).with_link(2, 3, LinkFaults::NONE);
        let mut p = FaultPlane::new(cfg);
        assert_eq!(p.judge(2, 3).copies, 1); // overridden link is clean
        assert_eq!(p.judge(3, 2).copies, 0); // default drops everything
    }

    #[test]
    fn crash_discards_in_both_directions() {
        let mut p = FaultPlane::new(FaultConfig::none(11));
        p.crash(6);
        assert_eq!(p.judge(0, 6).copies, 0);
        assert_eq!(p.judge(6, 0).copies, 0);
        assert!(p.sample_loss(0, 6));
        assert_eq!(p.stats().to_crashed, 3);
        assert!(p.is_crashed(6));
        assert!(!p.is_crashed(0));
    }

    #[test]
    fn same_seed_same_verdicts() {
        let run = |seed| {
            let mut p = FaultPlane::new(FaultConfig::uniform_drop(seed, 0.2).with_default(
                LinkFaults { drop: 0.2, duplicate: 0.1, jitter: ms(10) },
            ));
            (0..500).map(|i| p.judge(i % 7, (i + 1) % 7)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
