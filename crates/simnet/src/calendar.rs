//! Bucketed calendar-queue priority queue for event scheduling.
//!
//! A calendar queue (Brown 1988) spreads pending events over a ring of
//! day buckets, `day = time / width`, `bucket = day mod nbuckets`. With
//! the bucket width tracking the mean inter-event gap, both `push` and
//! `pop` are O(1) amortized — the property that lets the simulator's
//! event loop stay flat while the `BinaryHeap` baseline pays O(log n)
//! per operation on million-event backlogs.
//!
//! The ordering contract is exactly the simulator's `Scheduled`
//! contract: events pop in ascending `(time, seq)` order, with `seq`
//! breaking same-time ties in insertion order. A property test
//! (`calendar_props`) checks pop-order equivalence against
//! `BinaryHeap<Reverse<_>>` on random schedules.
//!
//! Two implementation choices keep every operation deterministic and
//! cheap:
//!
//! - each bucket is a `Vec` kept sorted **descending** by `(time, seq)`,
//!   so the bucket minimum is `last()` and removal is a `pop()` — no
//!   memmove on the hot path;
//! - the queue is indexed by a *day cursor*, not a wall clock: `pop`
//!   scans days from the cursor and, if a whole rotation of the ring
//!   comes up empty (a sparse schedule that jumped far ahead), falls
//!   back to a direct O(nbuckets) scan of the bucket minima and jumps
//!   the cursor there.
//!
//! Resizes (grow at > 2 events/bucket, shrink at < 1/4) re-estimate the
//! width from the live span divided by the population, so dense and
//! sparse phases of a run both keep near-O(1) behavior. All decisions
//! are pure functions of the push/pop history, so two runs that issue
//! the same operations see the same internal state — a requirement for
//! the simulator's byte-identical determinism gates.

/// Minimum (and initial) number of buckets; always a power of two.
const MIN_BUCKETS: usize = 16;
/// Upper bound on the ring size; bounds resize cost on huge backlogs.
const MAX_BUCKETS: usize = 1 << 20;
/// Initial bucket width in time units (microseconds in `simnet`).
const INITIAL_WIDTH: u64 = 1_024;

/// One queued item: the `(time, seq)` ordering key plus the payload.
#[derive(Debug, Clone)]
struct Slot<T> {
    time: u64,
    seq: u64,
    item: T,
}

/// A deterministic calendar queue ordered by ascending `(time, seq)`.
///
/// `push` requires keys at or after the last popped time — or, after a
/// bounded [`CalendarQueue::pop_before`] came up empty, at or after its
/// `limit` (event schedules never travel backwards); debug-asserted.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Ring of day buckets, each sorted descending by `(time, seq)`.
    buckets: Vec<Vec<Slot<T>>>,
    /// `buckets.len() - 1`; the ring size is a power of two.
    mask: u64,
    /// Width of one day in time units (>= 1).
    width: u64,
    /// Total queued items.
    len: usize,
    /// The day the next `pop` starts scanning from. Invariant: every
    /// queued item has `time / width >= cursor_day`.
    cursor_day: u64,
    /// Lower bound for pushes: the last popped time, or the `limit` of
    /// the last failed [`CalendarQueue::pop_before`], whichever is
    /// larger. Every queued item has `time >= floor` (pops remove
    /// minima), which is what keeps `cursor_day` valid across resizes.
    floor: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the default geometry.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            width: INITIAL_WIDTH,
            len: 0,
            cursor_day: 0,
            floor: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `item` under the key `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        debug_assert!(
            time >= self.floor,
            "calendar queue push travels backwards: time {time} is below the floor {}",
            self.floor
        );
        let slot = Slot { time, seq, item };
        let b = ((time / self.width) & self.mask) as usize;
        Self::insert_sorted(&mut self.buckets[b], slot);
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            let n = self.buckets.len() * 2;
            self.resize(n);
        }
    }

    /// Remove and return the minimum item, or `None` when empty.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.pop_before(u64::MAX)
    }

    /// Remove and return the minimum item if its time is **strictly
    /// below** `limit`; leave the queue untouched otherwise. This is
    /// the primitive behind bounded-window draining in the sharded
    /// executor and `run_until` in the serial simulator.
    pub fn pop_before(&mut self, limit: u64) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        // Scan days from the cursor; the first bucket whose minimum
        // belongs to the day under inspection holds the global minimum.
        let nbuckets = self.buckets.len() as u64;
        let mut day = self.cursor_day;
        for _ in 0..nbuckets {
            let b = (day & self.mask) as usize;
            if let Some(back) = self.buckets[b].last() {
                debug_assert!(back.time / self.width >= self.cursor_day);
                if back.time / self.width == day {
                    if back.time >= limit {
                        // The global minimum is at or past the limit.
                        // Advance the floor/cursor only to the limit:
                        // callers (the sharded executor) may still push
                        // items in `[limit, back.time)` before the next
                        // pop, and those must stay ahead of the cursor.
                        self.floor = self.floor.max(limit);
                        self.cursor_day = self.cursor_day.max(limit / self.width);
                        return None;
                    }
                    self.cursor_day = day;
                    return self.take_back(b);
                }
            }
            day += 1;
        }
        // A full rotation found nothing: the schedule jumped more than
        // nbuckets days ahead. Find the true minimum directly.
        let (b, min_time) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.last().map(|s| (i, s.time, s.seq)))
            .min_by_key(|&(_, t, seq)| (t, seq))
            .map(|(i, t, _)| (i, t))
            .expect("len > 0 implies a non-empty bucket");
        if min_time >= limit {
            // Same as above: future pushes may land below `min_time`
            // (but never below `limit`), so the cursor must not pass it.
            self.floor = self.floor.max(limit);
            self.cursor_day = self.cursor_day.max(limit / self.width);
            return None;
        }
        self.cursor_day = min_time / self.width;
        self.take_back(b)
    }

    /// The minimum `(time, seq)` key currently queued, without removal.
    /// O(nbuckets); used once per barrier window, not per event.
    pub fn min_key(&self) -> Option<(u64, u64)> {
        self.buckets.iter().filter_map(|v| v.last().map(|s| (s.time, s.seq))).min()
    }

    fn take_back(&mut self, b: usize) -> Option<(u64, u64, T)> {
        let slot = self.buckets[b].pop().expect("caller checked the bucket is non-empty");
        self.len -= 1;
        self.floor = slot.time;
        if self.len * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            let n = (self.buckets.len() / 2).max(MIN_BUCKETS);
            self.resize(n);
        }
        Some((slot.time, slot.seq, slot.item))
    }

    /// Insert keeping the bucket sorted descending by `(time, seq)`.
    fn insert_sorted(bucket: &mut Vec<Slot<T>>, slot: Slot<T>) {
        let key = (slot.time, slot.seq);
        // Descending order: find the first element strictly below `key`
        // and insert before it; `partition_point` sees the sorted-desc
        // prefix of elements >= key.
        let at = bucket.partition_point(|s| (s.time, s.seq) > key);
        bucket.insert(at, slot);
    }

    /// Rebuild the ring with `nbuckets` buckets and a width re-estimated
    /// from the live population (span / len, scaled by 3 as in Brown's
    /// original tuning, clamped to >= 1).
    fn resize(&mut self, nbuckets: usize) {
        let mut slots: Vec<Slot<T>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            slots.append(b);
        }
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for s in &slots {
            lo = lo.min(s.time);
            hi = hi.max(s.time);
        }
        self.width = if slots.is_empty() || hi == lo {
            INITIAL_WIDTH
        } else {
            (((hi - lo) as u128 * 3 / slots.len() as u128) as u64).max(1)
        };
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.mask = (nbuckets - 1) as u64;
        // The cursor restarts at the *floor*, not the current minimum:
        // pushes in `[floor, lo)` remain legal after the resize.
        self.cursor_day = self.floor / self.width;
        for s in slots {
            let b = ((s.time / self.width) & self.mask) as usize;
            Self::insert_sorted(&mut self.buckets[b], s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(5_000, 0, "a");
        q.push(1_000, 1, "b");
        q.push(5_000, 2, "c");
        q.push(1_000, 3, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, x)| x)).collect();
        assert_eq!(order, ["b", "d", "a", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_ties_break_by_seq_across_many() {
        let mut q = CalendarQueue::new();
        for seq in 0..100u64 {
            q.push(42, seq, seq);
        }
        for expect in 0..100u64 {
            let (t, s, v) = q.pop().unwrap();
            assert_eq!((t, s, v), (42, expect, expect));
        }
    }

    #[test]
    fn sparse_jump_far_beyond_ring() {
        let mut q = CalendarQueue::new();
        q.push(0, 0, 0u64);
        assert_eq!(q.pop().map(|(t, _, _)| t), Some(0));
        // Jump billions of time units ahead of the cursor — much more
        // than nbuckets * width — exercising the direct-scan fallback.
        q.push(10_000_000_000, 1, 1u64);
        q.push(10_000_000_001, 2, 2u64);
        assert_eq!(q.pop().map(|(t, _, _)| t), Some(10_000_000_000));
        assert_eq!(q.pop().map(|(t, _, _)| t), Some(10_000_000_001));
    }

    #[test]
    fn grows_and_shrinks_through_resize() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.push(i * 7, i, i);
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "10k items must have grown the ring");
        for expect in 0..10_000u64 {
            let (t, _, v) = q.pop().unwrap();
            assert_eq!((t, v), (expect * 7, expect));
        }
        assert_eq!(q.buckets.len(), MIN_BUCKETS, "empty queue shrinks back to minimum");
    }

    #[test]
    fn pop_before_respects_the_limit() {
        let mut q = CalendarQueue::new();
        q.push(10, 0, "early");
        q.push(20, 1, "late");
        assert_eq!(q.pop_before(15).map(|(_, _, x)| x), Some("early"));
        assert_eq!(q.pop_before(15), None);
        assert_eq!(q.pop_before(20), None, "limit is exclusive");
        assert_eq!(q.pop_before(21).map(|(_, _, x)| x), Some("late"));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn min_key_tracks_the_front() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.min_key(), None);
        q.push(30, 0, ());
        q.push(10, 1, ());
        q.push(10, 2, ());
        assert_eq!(q.min_key(), Some((10, 1)));
        q.pop();
        assert_eq!(q.min_key(), Some((10, 2)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new();
        let mut popped = Vec::new();
        let mut seq = 0u64;
        let mut clock = 0u64;
        for round in 0..50u64 {
            for k in 0..20u64 {
                q.push(clock + (k * 37) % 113, seq, seq);
                seq += 1;
            }
            for _ in 0..15 {
                if let Some((t, s, _)) = q.pop() {
                    popped.push((t, s));
                    clock = t;
                }
            }
            clock += round % 5;
        }
        while let Some((t, s, _)) = q.pop() {
            popped.push((t, s));
        }
        assert!(popped.windows(2).all(|w| w[0] < w[1]), "pop order must ascend by (time, seq)");
        assert_eq!(popped.len(), 1000);
    }
}
