//! Engine-level causal tracing hooks.
//!
//! The engine can carry an optional [`TraceSink`]; when one is
//! installed every send / delivery / drop / timer event is reported to
//! it as a [`TraceEvent`] carrying a monotonically assigned id and the
//! id of the event that *caused* it, so any delivery can be walked back
//! to the workload injection (capture / movement) at the root of its
//! chain.
//!
//! Causality is threaded mechanically: while the engine runs a world
//! handler for a delivery or a timer firing, the id of that delivery /
//! firing is the *current cause*, and every send or timer armed inside
//! the handler records it. Scheduled events remember the id of the
//! `Send`/`TimerSet` record that enqueued them, so the matching
//! `Deliver`/`TimerFired` record points back at it.
//!
//! **Zero-cost when off.** With no sink installed the engine performs
//! no allocations and no extra RNG draws for tracing — the only cost is
//! two dormant integer fields on each queued event — so a traced and an
//! untraced run with the same seed execute byte-identically. This is
//! asserted by `tests/determinism.rs`.
//!
//! The trait lives in `simnet` so the engine stays free of any
//! dependency on the `obs` crate; `obs::Recorder` is the canonical
//! implementation.

use crate::metrics::MsgClass;
use crate::sim::NodeIndex;
use crate::time::SimTime;

/// Identifier of one trace record. `0` is reserved for "no event" and
/// is never assigned; a [`TraceEvent::cause`] of `0` marks a root event
/// (injected from outside any handler).
pub type EventId = u64;

/// Identifier of an open span. `0` is reserved for "no span" (returned
/// when tracing is disabled); closing span `0` is a no-op.
pub type SpanId = u64;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was handed to the network (`deliver_at` is its
    /// scheduled arrival; under fault injection each duplicate copy
    /// gets its own `Send` record).
    Send,
    /// A message arrived and was handed to the world.
    Deliver,
    /// A message was discarded: dropped by the fault plane at send
    /// time, or addressed to a crashed node at delivery time.
    Drop,
    /// A timer was armed (`deliver_at` is when it will fire).
    TimerSet,
    /// A timer fired and was handed to the world.
    TimerFired,
    /// One overlay-routing hop of a traced DHT lookup (`hops` is the
    /// position along the path, starting at 1).
    LookupHop,
}

/// One record in the causal trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Monotonically assigned id (starts at 1).
    pub id: EventId,
    /// Id of the event that caused this one; `0` for roots.
    pub cause: EventId,
    /// What happened.
    pub kind: TraceKind,
    /// When it was recorded (virtual time).
    pub at: SimTime,
    /// For `Send`/`TimerSet`: the scheduled arrival / firing time.
    /// Equal to `at` for every other kind.
    pub deliver_at: SimTime,
    /// The node the event concerns: destination for sends/deliveries,
    /// owning node for timers, visited node for lookup hops.
    pub node: NodeIndex,
    /// The counterpart node: source for sends/deliveries/drops, the
    /// lookup origin for hops, `node` itself for timers.
    pub peer: NodeIndex,
    /// Message class (`None` for timers, local sends and lookup hops).
    pub class: Option<MsgClass>,
    /// Payload bytes (0 where not applicable).
    pub bytes: u32,
    /// Overlay hops charged (sends) or hop position (lookup hops).
    pub hops: u32,
    /// Application-attached subject tag (see [`Sim::set_trace_ctx`]);
    /// `0` means untagged. The peertrack layer tags per-object
    /// operations with a digest of the object id so the auditor can
    /// anchor causal slices.
    ///
    /// [`Sim::set_trace_ctx`]: crate::sim::Sim::set_trace_ctx
    pub ctx: u64,
}

/// Receiver for trace records and operation spans.
///
/// `on_event` is the only required method; the span hooks default to
/// no-ops so simple sinks (counters, filters) stay one `impl` long.
pub trait TraceSink {
    /// One causal record. Called in event order; `ev.id` is strictly
    /// increasing across calls.
    fn on_event(&mut self, ev: &TraceEvent);

    /// An application-level operation began (group-index flush, IOP
    /// update, migration, query…). `kind` is an application-defined
    /// tag (see `peertrack::spans`), `cause` the trace record the
    /// operation was started under (`0` if none). Returns a span id to
    /// pass to [`TraceSink::span_close`]; must not return `0`.
    fn span_open(&mut self, kind: u32, node: NodeIndex, at: SimTime, cause: EventId) -> SpanId {
        let _ = (kind, node, at, cause);
        1
    }

    /// The operation identified by `span` finished at `at`.
    fn span_close(&mut self, span: SpanId, at: SimTime) {
        let _ = (span, at);
    }
}
