//! Virtual time.
//!
//! The paper's time domain `T` is continuous (§II-B: "receptors are working
//! continuously"); microsecond resolution is far below any constant in the
//! evaluation (5 ms per hop, `Tmax` windows of hundreds of ms), so a `u64`
//! microsecond counter is an exact-enough model of it.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since the simulation epoch.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The far future; no event is ever scheduled here.
    pub const INFINITY: SimTime = SimTime(u64::MAX);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (rounded down).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional milliseconds, the unit Fig. 7 reports.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference (`self - earlier`), as a duration.
    pub fn since(&self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// Shorthand for [`SimTime::from_millis`].
pub const fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

/// Shorthand for [`SimTime::from_secs`].
pub const fn secs(v: u64) -> SimTime {
    SimTime::from_secs(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(ms(5).as_micros(), 5_000);
        assert_eq!(secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_micros(1500).as_millis(), 1);
        assert!((ms(5).as_millis_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::INFINITY + ms(1), SimTime::INFINITY);
        assert_eq!(ms(1) - ms(5), SimTime::ZERO);
        assert_eq!(ms(5).since(ms(2)), SimTime::from_millis(3));
        assert_eq!(ms(2).since(ms(5)), SimTime::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(ms(1) < ms(2));
        assert!(SimTime::ZERO < SimTime::INFINITY);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_micros(5)), "5us");
        assert_eq!(format!("{}", ms(5)), "5.000ms");
        assert_eq!(format!("{}", secs(5)), "5.000s");
    }
}
