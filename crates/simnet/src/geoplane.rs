//! The WAN latency plane: a [`geo::Topology`] consulted on every
//! delivery, alongside (and independent of) the fault plane.
//!
//! Where the fault plane answers "does this delivery arrive, and
//! mangled how", the geo plane answers "how far is the wire": each
//! `Sim::send` between sites in different regions is charged the
//! topology's deterministic base latency plus bandwidth term, and — for
//! pairs with a non-zero jitter bound — one uniform draw from the
//! plane's **own** seeded RNG. The same two properties the fault plane
//! guarantees hold here:
//!
//! * **Zero-cost when off (or zero).** No plane, or a plane with a
//!   zero topology ([`geo::Topology::is_zero`]), takes no RNG draws and
//!   adds no delay, so such runs stay byte-identical to pre-geo builds
//!   (the wan byte-identity gate in `scripts/verify.sh`).
//! * **Byte-identical replay.** The plane's `StdRng` is seeded from
//!   [`GeoConfig::seed`], independent of the engine and fault seeds.
//!
//! The plane also owns the **region-cut** partition fault: a severed
//! region pair parks (never drops) deliveries at the engine until the
//! pair is healed, modeling a WAN netsplit whose traffic resumes — in
//! original sequence order — once the route returns.

use crate::time::SimTime;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use geo::{GeoStats, RegionId, Topology};
use std::collections::HashSet;

/// Configuration for a [`GeoPlane`].
#[derive(Clone, Debug)]
pub struct GeoConfig {
    /// Seed for the plane's dedicated jitter RNG. Independent of the
    /// engine seed so the same WAN weather replays under different
    /// workload draws (and vice versa).
    pub seed: u64,
    /// Who sits where and what every region pair costs.
    pub topology: Topology,
}

impl GeoConfig {
    /// A plane over `topology` with jitter seeded from `seed`.
    pub fn new(seed: u64, topology: Topology) -> GeoConfig {
        GeoConfig { seed, topology }
    }
}

/// Seeded WAN-latency state consulted by `Sim::send`.
pub struct GeoPlane {
    topology: Topology,
    rng: StdRng,
    stats: GeoStats,
    /// Severed *directed* region pairs. `sever` inserts both
    /// directions; a partition is symmetric.
    severed: HashSet<(RegionId, RegionId)>,
}

impl GeoPlane {
    /// Build a plane from its config.
    pub fn new(cfg: GeoConfig) -> GeoPlane {
        let regions = cfg.topology.regions();
        GeoPlane {
            topology: cfg.topology,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: GeoStats::new(regions),
            severed: HashSet::new(),
        }
    }

    /// The topology the plane runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Per-region-pair traffic the plane has charged so far.
    pub fn stats(&self) -> &GeoStats {
        &self.stats
    }

    /// Extra delivery delay for one message `from -> to` of `bytes`:
    /// the deterministic wire cost plus — only when the pair's jitter
    /// bound is non-zero — one uniform RNG draw. Also counts the
    /// message in [`GeoPlane::stats`].
    pub fn extra_delay(&mut self, from: usize, to: usize, bytes: usize) -> SimTime {
        let (a, b) = (self.topology.region_of(from), self.topology.region_of(to));
        self.stats.record(a, b, bytes);
        let base = self.topology.wire_us(a, b, bytes);
        let bound = self.topology.jitter_bound_us(a, b);
        let jitter = if bound > 0 { self.rng.gen_range(0..=bound) } else { 0 };
        SimTime::from_micros(base + jitter)
    }

    /// Sever the (symmetric) link between two regions: deliveries whose
    /// endpoints straddle the cut are parked by the engine until
    /// [`GeoPlane::heal`]. Severing a pair twice, or `a == b`, is a
    /// no-op.
    pub fn sever(&mut self, a: RegionId, b: RegionId) {
        if a == b {
            return;
        }
        self.severed.insert((a, b));
        self.severed.insert((b, a));
    }

    /// Heal the link between two regions (the engine then releases
    /// parked deliveries for the pair).
    pub fn heal(&mut self, a: RegionId, b: RegionId) {
        self.severed.remove(&(a, b));
        self.severed.remove(&(b, a));
    }

    /// Heal every severed pair.
    pub fn heal_all(&mut self) {
        self.severed.clear();
    }

    /// Is any region pair currently severed?
    pub fn any_severed(&self) -> bool {
        !self.severed.is_empty()
    }

    /// Is the directed region pair `from -> to` severed?
    pub fn pair_severed(&self, from: RegionId, to: RegionId) -> bool {
        self.severed.contains(&(from, to))
    }

    /// Does a message between these two *sites* cross a severed pair?
    pub fn sites_severed(&self, from: usize, to: usize) -> bool {
        !self.severed.is_empty()
            && self
                .severed
                .contains(&(self.topology.region_of(from), self.topology.region_of(to)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_topology_adds_no_delay_and_draws_nothing() {
        let mut p = GeoPlane::new(GeoConfig::new(1, Topology::single_region(4)));
        for i in 0..100 {
            assert_eq!(p.extra_delay(i % 4, (i + 1) % 4, 512), SimTime::ZERO);
        }
        // The RNG was never advanced: a fresh plane's RNG produces the
        // same next value.
        let mut fresh = StdRng::seed_from_u64(1);
        assert_eq!(p.rng.gen::<u64>(), fresh.gen::<u64>());
        assert_eq!(p.stats().cross_bytes(), 0);
        assert_eq!(p.stats().intra_bytes(), 100 * 512);
    }

    #[test]
    fn wan_delay_is_base_plus_bounded_jitter() {
        let t = Topology::wan3(6);
        let mut p = GeoPlane::new(GeoConfig::new(7, t.clone()));
        for _ in 0..200 {
            let d = p.extra_delay(0, 5, 1024).as_micros(); // eu -> ap
            let base = t.wire_us(0, 2, 1024);
            assert!(d >= base && d <= base + t.jitter_bound_us(0, 2), "delay {d}");
        }
        assert!(p.stats().cross_bytes() > 0);
    }

    #[test]
    fn same_seed_same_weather() {
        let run = |seed| {
            let mut p = GeoPlane::new(GeoConfig::new(seed, Topology::wan3(6)));
            (0..300).map(|i| p.extra_delay(i % 6, (i + 3) % 6, 64)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn sever_is_symmetric_and_healable() {
        let mut p = GeoPlane::new(GeoConfig::new(1, Topology::wan3(6)));
        assert!(!p.any_severed());
        p.sever(0, 2);
        assert!(p.sites_severed(0, 5)); // eu site -> ap site
        assert!(p.sites_severed(5, 0));
        assert!(!p.sites_severed(0, 3)); // eu -> us untouched
        assert!(!p.sites_severed(0, 1)); // intra-eu untouched
        p.sever(1, 1); // self-cut is a no-op
        p.heal(2, 0); // order-insensitive
        assert!(!p.any_severed());
        assert!(!p.sites_severed(0, 5));
    }
}
