//! Message accounting.
//!
//! §V-A defines the paper's headline metric: "The indexing cost, measured
//! by the total volume of messages transferred over the network."
//! [`Metrics`] tallies messages, payload bytes and overlay hops, broken
//! down by protocol message class, so every figure's y-axis can be
//! recomputed from one structure.
//!
//! [`SharedMetrics`] is the thread-safe aggregate used when experiment
//! sweeps fan out across threads (one `Sim` per thread, atomics for the
//! roll-up — see the hpc-parallel guidance on data-race-free accounting).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Protocol message classes, used to break indexing cost down per figure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum MsgClass {
    /// M1 — arrival report from capturing node to gateway (§III).
    IndexReport = 0,
    /// M2/M3 — IOP updates from gateway to source/destination (§III).
    IopUpdate = 1,
    /// Group indexing message `(group id, (objects), timestamp)` (§IV-A.2).
    GroupIndex = 2,
    /// `refresh_from_ascent` / `refresh_from_descent` fetches (Fig. 5).
    Refresh = 3,
    /// Delegation of records from a triangle parent to children (Fig. 5).
    Delegate = 4,
    /// Split/merge data migration when `Lp` changes (§IV-A.2).
    SplitMerge = 5,
    /// Object/group lookup traffic (§IV-A.3).
    Lookup = 6,
    /// Trace/locate query traffic (§IV-B).
    Query = 7,
    /// Chord maintenance (join, stabilize, key migration).
    Overlay = 8,
    /// Epidemic aggregation for network-size estimation (§IV-A.1, \[14\]).
    Gossip = 9,
    /// Delivery acknowledgements for the at-least-once retry layer.
    Ack = 10,
    /// Retransmissions after an ack timeout (at-least-once delivery).
    Retrans = 11,
}

/// Number of message classes.
pub const NUM_CLASSES: usize = 12;

/// All message classes, for iteration in reports.
pub const ALL_CLASSES: [MsgClass; NUM_CLASSES] = [
    MsgClass::IndexReport,
    MsgClass::IopUpdate,
    MsgClass::GroupIndex,
    MsgClass::Refresh,
    MsgClass::Delegate,
    MsgClass::SplitMerge,
    MsgClass::Lookup,
    MsgClass::Query,
    MsgClass::Overlay,
    MsgClass::Gossip,
    MsgClass::Ack,
    MsgClass::Retrans,
];

impl MsgClass {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MsgClass::IndexReport => "index-report",
            MsgClass::IopUpdate => "iop-update",
            MsgClass::GroupIndex => "group-index",
            MsgClass::Refresh => "refresh",
            MsgClass::Delegate => "delegate",
            MsgClass::SplitMerge => "split-merge",
            MsgClass::Lookup => "lookup",
            MsgClass::Query => "query",
            MsgClass::Overlay => "overlay",
            MsgClass::Gossip => "gossip",
            MsgClass::Ack => "ack",
            MsgClass::Retrans => "retrans",
        }
    }

    /// Does this class count toward *indexing cost* (Figs. 6 and 8)?
    /// The paper's indexing cost covers index establishment and IOP
    /// maintenance, not queries, overlay upkeep, or reliability overhead
    /// (acks/retransmissions are kept separate so faulty runs remain
    /// comparable to the paper's loss-free cost model).
    pub fn is_indexing(&self) -> bool {
        matches!(
            self,
            MsgClass::IndexReport
                | MsgClass::IopUpdate
                | MsgClass::GroupIndex
                | MsgClass::Refresh
                | MsgClass::Delegate
                | MsgClass::SplitMerge
        )
    }
}

/// Single-threaded tally of network activity.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    messages: [u64; NUM_CLASSES],
    bytes: [u64; NUM_CLASSES],
    hops: [u64; NUM_CLASSES],
}

impl Metrics {
    /// Fresh, zeroed tally.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one message of class `class` carrying `bytes` payload over
    /// `hops` overlay hops.
    pub fn record(&mut self, class: MsgClass, bytes: usize, hops: u32) {
        let i = class as usize;
        self.messages[i] += 1;
        self.bytes[i] += bytes as u64;
        self.hops[i] += hops as u64;
    }

    /// Record `messages` messages of one class at once (used by
    /// synchronous query paths that account their traffic after the
    /// fact).
    pub fn record_bulk(&mut self, class: MsgClass, messages: u64, bytes: u64, hops: u64) {
        let i = class as usize;
        self.messages[i] += messages;
        self.bytes[i] += bytes;
        self.hops[i] += hops;
    }

    /// Messages of one class.
    pub fn messages_of(&self, class: MsgClass) -> u64 {
        self.messages[class as usize]
    }

    /// Bytes of one class.
    pub fn bytes_of(&self, class: MsgClass) -> u64 {
        self.bytes[class as usize]
    }

    /// Hops of one class.
    pub fn hops_of(&self, class: MsgClass) -> u64 {
        self.hops[class as usize]
    }

    /// Total messages, all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total payload bytes, all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total overlay hops, all classes.
    pub fn total_hops(&self) -> u64 {
        self.hops.iter().sum()
    }

    /// The paper's *indexing cost*: messages of the indexing classes
    /// (see [`MsgClass::is_indexing`]).
    pub fn indexing_messages(&self) -> u64 {
        ALL_CLASSES
            .iter()
            .filter(|c| c.is_indexing())
            .map(|&c| self.messages_of(c))
            .sum()
    }

    /// Indexing cost in overlay-hop transmissions — each message counted
    /// once per hop it crosses, the network-layer reading of "messages
    /// transferred over the network" (§IV-C counts routing cost this
    /// way: `O(2^Lp log2 Nn)` vs `O(No log2 Nn)` hops).
    pub fn indexing_hops(&self) -> u64 {
        ALL_CLASSES
            .iter()
            .filter(|c| c.is_indexing())
            .map(|&c| self.hops_of(c))
            .sum()
    }

    /// Indexing cost in payload bytes ("total volume of messages").
    pub fn indexing_bytes(&self) -> u64 {
        ALL_CLASSES
            .iter()
            .filter(|c| c.is_indexing())
            .map(|&c| self.bytes_of(c))
            .sum()
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for i in 0..NUM_CLASSES {
            self.messages[i] += other.messages[i];
            self.bytes[i] += other.bytes[i];
            self.hops[i] += other.hops[i];
        }
    }

    /// Reset all counters to zero (e.g. after warm-up, before the
    /// measured phase of an experiment).
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }

    /// Difference `self - baseline`, for measuring a phase. Saturating:
    /// a [`Metrics::reset`] between taking the baseline and the delta
    /// leaves counters *below* the baseline, which must read as zero
    /// progress, not a subtraction overflow.
    pub fn delta_since(&self, baseline: &Metrics) -> Metrics {
        let mut out = Metrics::default();
        for i in 0..NUM_CLASSES {
            out.messages[i] = self.messages[i].saturating_sub(baseline.messages[i]);
            out.bytes[i] = self.bytes[i].saturating_sub(baseline.bytes[i]);
            out.hops[i] = self.hops[i].saturating_sub(baseline.hops[i]);
        }
        out
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Metrics {{ total: {} msgs / {} B / {} hops",
            self.total_messages(),
            self.total_bytes(),
            self.total_hops()
        )?;
        for &c in &ALL_CLASSES {
            if self.messages_of(c) > 0 {
                writeln!(
                    f,
                    "  {:>12}: {:>8} msgs {:>10} B {:>8} hops",
                    c.label(),
                    self.messages_of(c),
                    self.bytes_of(c),
                    self.hops_of(c)
                )?;
            }
        }
        write!(f, "}}")
    }
}

/// Thread-safe aggregate of many [`Metrics`], for parallel sweeps.
#[derive(Default)]
pub struct SharedMetrics {
    messages: [AtomicU64; NUM_CLASSES],
    bytes: [AtomicU64; NUM_CLASSES],
    hops: [AtomicU64; NUM_CLASSES],
}

impl SharedMetrics {
    /// Fresh, zeroed aggregate.
    pub fn new() -> SharedMetrics {
        SharedMetrics::default()
    }

    /// Fold a per-run tally into the aggregate. Relaxed ordering suffices:
    /// counters are independent and only read after the joining of all
    /// worker threads establishes the necessary happens-before edges.
    pub fn absorb(&self, m: &Metrics) {
        for i in 0..NUM_CLASSES {
            self.messages[i].fetch_add(m.messages[i], Ordering::Relaxed);
            self.bytes[i].fetch_add(m.bytes[i], Ordering::Relaxed);
            self.hops[i].fetch_add(m.hops[i], Ordering::Relaxed);
        }
    }

    /// Snapshot the aggregate as a plain [`Metrics`].
    pub fn snapshot(&self) -> Metrics {
        let mut out = Metrics::default();
        for i in 0..NUM_CLASSES {
            out.messages[i] = self.messages[i].load(Ordering::Relaxed);
            out.bytes[i] = self.bytes[i].load(Ordering::Relaxed);
            out.hops[i] = self.hops[i].load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut m = Metrics::new();
        m.record(MsgClass::IndexReport, 100, 3);
        m.record(MsgClass::IndexReport, 50, 2);
        m.record(MsgClass::Query, 10, 1);
        assert_eq!(m.messages_of(MsgClass::IndexReport), 2);
        assert_eq!(m.bytes_of(MsgClass::IndexReport), 150);
        assert_eq!(m.hops_of(MsgClass::IndexReport), 5);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_bytes(), 160);
        assert_eq!(m.total_hops(), 6);
    }

    #[test]
    fn indexing_cost_excludes_queries_and_overlay() {
        let mut m = Metrics::new();
        m.record(MsgClass::GroupIndex, 1, 1);
        m.record(MsgClass::IopUpdate, 1, 1);
        m.record(MsgClass::Query, 1, 1);
        m.record(MsgClass::Overlay, 1, 1);
        m.record(MsgClass::Gossip, 1, 1);
        assert_eq!(m.indexing_messages(), 2);
        assert_eq!(m.indexing_bytes(), 2);
    }

    #[test]
    fn merge_and_delta() {
        let mut a = Metrics::new();
        a.record(MsgClass::Lookup, 10, 4);
        let baseline = a.clone();
        a.record(MsgClass::Lookup, 20, 5);
        let d = a.delta_since(&baseline);
        assert_eq!(d.messages_of(MsgClass::Lookup), 1);
        assert_eq!(d.bytes_of(MsgClass::Lookup), 20);

        let mut merged = Metrics::new();
        merged.merge(&a);
        merged.merge(&d);
        assert_eq!(merged.messages_of(MsgClass::Lookup), 3);
    }

    #[test]
    fn delta_after_reset_saturates_to_zero() {
        // Regression: reset() between baseline and delta used to panic
        // in debug builds (subtraction overflow) because the counters
        // fell below the baseline.
        let mut m = Metrics::new();
        m.record(MsgClass::GroupIndex, 64, 3);
        m.record(MsgClass::Query, 8, 1);
        let baseline = m.clone();
        m.reset();
        m.record(MsgClass::Query, 8, 1);
        let d = m.delta_since(&baseline);
        assert_eq!(d.messages_of(MsgClass::GroupIndex), 0);
        assert_eq!(d.bytes_of(MsgClass::GroupIndex), 0);
        assert_eq!(d.hops_of(MsgClass::GroupIndex), 0);
        assert_eq!(d.messages_of(MsgClass::Query), 0);
        assert_eq!(d.total_messages(), 0);
    }

    #[test]
    fn shared_absorbs_across_threads() {
        let shared = SharedMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = Metrics::new();
                    for _ in 0..1000 {
                        local.record(MsgClass::GroupIndex, 8, 2);
                    }
                    shared.absorb(&local);
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.messages_of(MsgClass::GroupIndex), 8_000);
        assert_eq!(snap.bytes_of(MsgClass::GroupIndex), 64_000);
        assert_eq!(snap.hops_of(MsgClass::GroupIndex), 16_000);
    }

    #[test]
    fn all_classes_labelled_uniquely() {
        let labels: std::collections::BTreeSet<_> =
            ALL_CLASSES.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), NUM_CLASSES);
    }
}
