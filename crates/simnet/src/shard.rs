//! Deterministic space-partitioned parallel execution.
//!
//! The serial engine ([`crate::Sim`]) pops one global event at a time;
//! at 10⁶ nodes that single queue is the scalability wall. This module
//! shards the node space over a **fixed number of shards** `S`, each
//! with its own calendar queue, RNG stream and [`Metrics`] tally, and
//! executes shards on `T ≤ S` OS threads using conservative time
//! windows:
//!
//! 1. virtual time is cut into windows of width `Δ` (the *barrier
//!    window*); within a window each shard drains its own queue
//!    independently — **no** cross-shard interaction;
//! 2. a message for another shard must carry a delay `≥ Δ` (in the
//!    paper's network model every hop costs 5 ms, so `Δ = 5 ms` is
//!    safe); it is staged locally and exchanged at the window barrier;
//! 3. at the barrier, each destination shard sorts its incoming batch
//!    by `(deliver_time, source_shard, source_seq)` — a total order
//!    that does not depend on thread scheduling — and enqueues the
//!    messages with locally assigned sequence numbers.
//!
//! **Determinism argument.** A shard's execution is a pure function of
//! its initial state (seed, shard index) and the sorted inbox batches
//! it receives per window. The batches themselves are produced by
//! per-shard pure executions and canonicalized by the sort, and the
//! window schedule (including empty-window skips and termination) is
//! derived from values agreed at each barrier. Nothing observable
//! depends on `T` — a `T`-thread run is byte-identical to the
//! single-thread run at the same seed. Thread count is a *throughput*
//! knob, never a *semantics* knob. The determinism suite runs the same
//! workload at `T ∈ {1, 2, 4}` and compares reports byte for byte.
//!
//! Mailboxes are double-buffered by barrier-round parity so one
//! `Barrier` rendezvous per round suffices for message exchange: during
//! round `i` every thread drains buffer `i % 2` and deposits into
//! buffer `(i+1) % 2`, so drains and deposits never touch the same
//! buffer concurrently.

use crate::calendar::CalendarQueue;
use crate::metrics::{Metrics, MsgClass};
use crate::time::SimTime;
use detrand::{rngs::StdRng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Geometry of a sharded run.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// RNG seed; each shard derives its own stream from it.
    pub seed: u64,
    /// Number of shards. Fixed per run: results depend on this, never
    /// on the thread count.
    pub shards: usize,
    /// Number of simulated nodes; nodes are block-partitioned over the
    /// shards (node `n` lives on shard `n * shards / nodes`).
    pub nodes: u32,
    /// Barrier window width `Δ`. Cross-shard messages must carry a
    /// delay `≥ Δ` (asserted); with the paper's 5 ms/hop latency model
    /// `Δ = 5 ms` is the natural choice.
    pub window: SimTime,
    /// Worker threads to run on (clamped to `1..=shards`). Affects
    /// wall-clock time only.
    pub threads: usize,
}

impl ShardConfig {
    /// The shard owning `node` (block partition).
    pub fn shard_of(&self, node: u32) -> usize {
        debug_assert!(node < self.nodes);
        (node as u64 * self.shards as u64 / self.nodes as u64) as usize
    }
}

/// Protocol logic driven by the sharded executor. One instance per
/// shard; an instance only ever sees events for its own nodes.
pub trait ShardWorld: Send {
    /// Message payload exchanged between nodes.
    type Msg: Send;

    /// Called once per shard before the first window, to seed the
    /// workload (schedule timers, send initial messages).
    fn on_start(&mut self, _ctx: &mut ShardCtx<'_, Self::Msg>) {}

    /// A message from `from` has arrived at `to` (a node of this shard).
    fn on_message(&mut self, ctx: &mut ShardCtx<'_, Self::Msg>, to: u32, from: u32, msg: Self::Msg);

    /// A timer armed via [`ShardCtx::set_timer`] / [`ShardCtx::schedule`]
    /// has fired at `node`.
    fn on_timer(&mut self, ctx: &mut ShardCtx<'_, Self::Msg>, node: u32, kind: u64);
}

/// Per-shard event payload.
enum Ev<M> {
    Msg { to: u32, from: u32, msg: M },
    Timer { node: u32, kind: u64 },
}

/// A message staged for another shard, exchanged at the next barrier.
struct OutMsg<M> {
    /// Absolute delivery time in microseconds.
    time: u64,
    /// Source shard — part of the canonical inbox ordering.
    src_shard: u32,
    /// Source-shard sequence number — makes the ordering key unique.
    src_seq: u64,
    from: u32,
    to: u32,
    msg: M,
}

/// Per-shard execution engine: clock, calendar queue, RNG, metrics.
struct Engine<M> {
    shard: usize,
    cfg: ShardConfig,
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<Ev<M>>,
    rng: StdRng,
    metrics: Metrics,
    events: u64,
    /// Cross-shard messages staged during the current window, one list
    /// per destination shard; flushed to the mailboxes at the barrier.
    stage: Vec<Vec<OutMsg<M>>>,
}

impl<M> Engine<M> {
    fn new(shard: usize, cfg: &ShardConfig) -> Engine<M> {
        Engine {
            shard,
            cfg: *cfg,
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            rng: StdRng::seed_from_u64(
                cfg.seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            metrics: Metrics::new(),
            events: 0,
            stage: (0..cfg.shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Drain events with `time < wend_us`, dispatching into `world`.
    fn run_window<W: ShardWorld<Msg = M>>(&mut self, world: &mut W, wend_us: u64) {
        while let Some((t, _seq, ev)) = self.queue.pop_before(wend_us) {
            self.now = SimTime::from_micros(t);
            self.events += 1;
            let mut ctx = ShardCtx { eng: self };
            match ev {
                Ev::Msg { to, from, msg } => world.on_message(&mut ctx, to, from, msg),
                Ev::Timer { node, kind } => world.on_timer(&mut ctx, node, kind),
            }
        }
    }
}

/// The handle a [`ShardWorld`] drives its shard through: clock, RNG,
/// metrics, sends and timers. The sharded analogue of `&mut Sim`.
pub struct ShardCtx<'a, M> {
    eng: &'a mut Engine<M>,
}

impl<M> ShardCtx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.eng.now
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.eng.shard
    }

    /// The run geometry (shards, nodes, window).
    pub fn config(&self) -> &ShardConfig {
        &self.eng.cfg
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: u32) -> usize {
        self.eng.cfg.shard_of(node)
    }

    /// This shard's deterministic RNG stream.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.eng.rng
    }

    /// This shard's metrics tally (merged across shards after the run).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.eng.metrics
    }

    /// Send `msg` from `from` to `to`, recording `class`/`bytes`/`hops`
    /// and delivering after `delay`. Unlike `Sim::send`, the caller
    /// supplies the modeled delay explicitly (the flat worlds compute
    /// `hops × 5 ms` themselves). Cross-shard sends must satisfy
    /// `delay ≥ window` — the conservative-synchronization contract —
    /// and this is asserted.
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &mut self,
        from: u32,
        to: u32,
        class: MsgClass,
        bytes: usize,
        hops: u32,
        delay: SimTime,
        msg: M,
    ) {
        self.eng.metrics.record(class, bytes, hops);
        let at = self.eng.now + delay;
        let dst = self.eng.cfg.shard_of(to);
        let seq = self.eng.seq;
        self.eng.seq += 1;
        if dst == self.eng.shard {
            self.eng.queue.push(at.as_micros(), seq, Ev::Msg { to, from, msg });
        } else {
            assert!(
                delay >= self.eng.cfg.window,
                "cross-shard delay {delay} is below the barrier window {} — \
                 conservative synchronization would miss this delivery",
                self.eng.cfg.window
            );
            self.eng.stage[dst].push(OutMsg {
                time: at.as_micros(),
                src_shard: self.eng.shard as u32,
                src_seq: seq,
                from,
                to,
                msg,
            });
        }
    }

    /// Arm a timer at a **local** node, firing after `delay`.
    pub fn set_timer(&mut self, node: u32, delay: SimTime, kind: u64) {
        self.schedule(self.eng.now + delay, node, kind);
    }

    /// Schedule an absolute-time event at a **local** node (workload
    /// injection from `on_start`).
    pub fn schedule(&mut self, at: SimTime, node: u32, kind: u64) {
        assert!(at >= self.eng.now, "cannot schedule into the past");
        assert_eq!(
            self.eng.cfg.shard_of(node),
            self.eng.shard,
            "timers must target nodes owned by the scheduling shard"
        );
        let seq = self.eng.seq;
        self.eng.seq += 1;
        self.eng.queue.push(at.as_micros(), seq, Ev::Timer { node, kind });
    }
}

/// Result of a sharded run: the final per-shard worlds plus the merged
/// accounting, all independent of the thread count.
pub struct ShardRun<W> {
    /// The per-shard worlds in shard order, for result extraction.
    pub worlds: Vec<W>,
    /// All shard tallies merged in shard order.
    pub metrics: Metrics,
    /// Per-shard tallies, shard order.
    pub shard_metrics: Vec<Metrics>,
    /// Total events processed across all shards.
    pub events: u64,
    /// Barrier rounds executed.
    pub windows: u64,
}

/// Shared per-round termination state, double-buffered by parity.
struct RoundState {
    /// Events still queued plus messages in flight, summed over shards.
    pending: AtomicU64,
    /// Minimum pending event time (µs) across shards; `u64::MAX` = none.
    min_time: AtomicU64,
}

impl RoundState {
    fn new() -> RoundState {
        RoundState { pending: AtomicU64::new(0), min_time: AtomicU64::new(u64::MAX) }
    }
}

/// Run `worlds` (one per shard) until no events remain or the next
/// event would land at or past `until`. Returns worlds, merged metrics
/// and counters; the result is byte-identical for every thread count.
pub fn run_sharded<W: ShardWorld>(
    cfg: &ShardConfig,
    worlds: Vec<W>,
    until: SimTime,
) -> ShardRun<W> {
    assert!(cfg.shards > 0, "need at least one shard");
    assert!(cfg.nodes as u64 >= cfg.shards as u64, "more shards than nodes");
    assert!(cfg.window > SimTime::ZERO, "barrier window must be positive");
    assert_eq!(worlds.len(), cfg.shards, "one world per shard");
    let threads = cfg.threads.clamp(1, cfg.shards);

    // Static shard→thread assignment: thread t owns shards {s : s % T == t}.
    let mut cells: Vec<Vec<(usize, W, Engine<W::Msg>)>> = (0..threads).map(|_| Vec::new()).collect();
    for (s, w) in worlds.into_iter().enumerate() {
        cells[s % threads].push((s, w, Engine::new(s, cfg)));
    }

    // mail[parity][dst] — deposits during round i go to parity (i+1)%2.
    let mail: Vec<Vec<Mutex<Vec<OutMsg<W::Msg>>>>> = (0..2)
        .map(|_| (0..cfg.shards).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let rounds = [RoundState::new(), RoundState::new()];
    let barrier = Barrier::new(threads);

    let finished: Vec<(Vec<(usize, W, Engine<W::Msg>)>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .into_iter()
            .map(|mine| {
                let (mail, rounds, barrier) = (&mail, &rounds, &barrier);
                scope.spawn(move || shard_worker(cfg, mine, mail, rounds, barrier, until))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut slots: Vec<Option<(W, Engine<W::Msg>)>> =
        (0..cfg.shards).map(|_| None).collect();
    let mut windows = 0u64;
    for (mine, w) in finished {
        windows = windows.max(w);
        for (s, world, eng) in mine {
            slots[s] = Some((world, eng));
        }
    }
    let mut out_worlds = Vec::with_capacity(cfg.shards);
    let mut shard_metrics = Vec::with_capacity(cfg.shards);
    let mut metrics = Metrics::new();
    let mut events = 0u64;
    for slot in slots {
        let (world, eng) = slot.expect("every shard returns from its worker");
        metrics.merge(&eng.metrics);
        events += eng.events;
        shard_metrics.push(eng.metrics);
        out_worlds.push(world);
    }
    ShardRun { worlds: out_worlds, metrics, shard_metrics, events, windows }
}

/// One worker thread: drives its statically assigned shards through
/// barrier rounds until the run-wide termination condition holds.
fn shard_worker<W: ShardWorld>(
    cfg: &ShardConfig,
    mut mine: Vec<(usize, W, Engine<W::Msg>)>,
    mail: &[Vec<Mutex<Vec<OutMsg<W::Msg>>>>],
    rounds: &[RoundState; 2],
    barrier: &Barrier,
    until: SimTime,
) -> (Vec<(usize, W, Engine<W::Msg>)>, u64) {
    let width = cfg.window.as_micros();
    for (_s, world, eng) in mine.iter_mut() {
        let mut ctx = ShardCtx { eng };
        world.on_start(&mut ctx);
    }
    let mut round: u64 = 0; // barrier-round counter — mailbox parity
    let mut k: u64 = 0; // window index — virtual-time position
    loop {
        let parity = (round % 2) as usize;
        let wend_us = k.saturating_add(1).saturating_mul(width).min(until.as_micros());

        // Drain this round's inbox batch into each owned shard in the
        // canonical order, then run the shard's window.
        for (s, world, eng) in mine.iter_mut() {
            let mut inbox = std::mem::take(
                &mut *mail[parity][*s].lock().expect("mailbox lock poisoned"),
            );
            inbox.sort_unstable_by_key(|m| (m.time, m.src_shard, m.src_seq));
            for m in inbox {
                let seq = eng.seq;
                eng.seq += 1;
                eng.queue.push(m.time, seq, Ev::Msg { to: m.to, from: m.from, msg: m.msg });
            }
            eng.run_window(world, wend_us);
        }

        // Flush staged cross-shard messages into next round's mailboxes
        // and publish this thread's share of the termination state.
        let next_parity = ((round + 1) % 2) as usize;
        let mut my_pending = 0u64;
        let mut my_min = u64::MAX;
        for (_s, _world, eng) in mine.iter_mut() {
            for dst in 0..cfg.shards {
                if eng.stage[dst].is_empty() {
                    continue;
                }
                let staged = std::mem::take(&mut eng.stage[dst]);
                my_pending += staged.len() as u64;
                for m in &staged {
                    my_min = my_min.min(m.time);
                }
                mail[next_parity][dst]
                    .lock()
                    .expect("mailbox lock poisoned")
                    .extend(staged);
            }
            my_pending += eng.queue.len() as u64;
            if let Some((t, _)) = eng.queue.min_key() {
                my_min = my_min.min(t);
            }
        }
        rounds[parity].pending.fetch_add(my_pending, Ordering::SeqCst);
        rounds[parity].min_time.fetch_min(my_min, Ordering::SeqCst);
        barrier.wait();
        let pending = rounds[parity].pending.load(Ordering::SeqCst);
        let gmin = rounds[parity].min_time.load(Ordering::SeqCst);
        // Second rendezvous: after it, every thread has read the agreed
        // values, so the leader can safely re-zero this parity slot for
        // its reuse two rounds from now.
        if barrier.wait().is_leader() {
            rounds[parity].pending.store(0, Ordering::SeqCst);
            rounds[parity].min_time.store(u64::MAX, Ordering::SeqCst);
        }
        round += 1;
        if pending == 0 || gmin >= until.as_micros() {
            break;
        }
        // Jump straight to the window holding the earliest pending
        // event — all threads compute the same `k` from `gmin`.
        k = (gmin / width).max(k + 1);
    }
    (mine, round)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ms;

    /// A token hops around the node ring; each shard logs its local
    /// deliveries. The token crosses shard boundaries constantly, so
    /// the test exercises mailbox exchange, window jumps and
    /// termination.
    struct TokenRing {
        nodes: u32,
        log: Vec<(u64, u32)>,
    }

    impl ShardWorld for TokenRing {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut ShardCtx<'_, u32>) {
            if ctx.shard() == 0 {
                ctx.schedule(ms(1), 0, 7);
            }
        }

        fn on_message(&mut self, ctx: &mut ShardCtx<'_, u32>, to: u32, _from: u32, hops: u32) {
            self.log.push((ctx.now().as_micros(), to));
            if hops > 0 {
                let next = (to + 1) % self.nodes;
                ctx.send(to, next, MsgClass::Query, 8, 1, ms(5), hops - 1);
            }
        }

        fn on_timer(&mut self, ctx: &mut ShardCtx<'_, u32>, node: u32, kind: u64) {
            assert_eq!(kind, 7);
            let next = (node + 1) % self.nodes;
            ctx.send(node, next, MsgClass::Query, 8, 1, ms(5), 24);
        }
    }

    fn run_ring(threads: usize) -> (Vec<Vec<(u64, u32)>>, String, u64) {
        let cfg = ShardConfig { seed: 42, shards: 4, nodes: 8, window: ms(5), threads };
        let worlds = (0..cfg.shards).map(|_| TokenRing { nodes: cfg.nodes, log: Vec::new() }).collect();
        let run = run_sharded(&cfg, worlds, SimTime::INFINITY);
        let logs = run.worlds.into_iter().map(|w| w.log).collect();
        (logs, format!("{:?}", run.metrics), run.events)
    }

    #[test]
    fn token_visits_every_node_in_order() {
        let (logs, _, events) = run_ring(1);
        // 1 timer + 25 deliveries (the initial send plus 24 forwards).
        assert_eq!(events, 26);
        let mut all: Vec<(u64, u32)> = logs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 25);
        // Consecutive deliveries 5 ms apart, walking the ring.
        for (i, &(t, node)) in all.iter().enumerate() {
            assert_eq!(t, 1_000 + 5_000 * (i as u64 + 1));
            assert_eq!(node, ((1 + i) % 8) as u32);
        }
    }

    #[test]
    fn thread_count_is_invisible() {
        let base = run_ring(1);
        assert_eq!(base, run_ring(2));
        assert_eq!(base, run_ring(4));
    }

    #[test]
    #[should_panic(expected = "cross-shard delay")]
    fn cross_shard_send_below_window_panics() {
        struct Bad;
        impl ShardWorld for Bad {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut ShardCtx<'_, ()>) {
                if ctx.shard() == 0 {
                    ctx.schedule(SimTime::ZERO, 0, 0);
                }
            }
            fn on_message(&mut self, _: &mut ShardCtx<'_, ()>, _: u32, _: u32, _: ()) {}
            fn on_timer(&mut self, ctx: &mut ShardCtx<'_, ()>, node: u32, _: u64) {
                // Node 3 lives on the other shard; 1 ms < the 5 ms window.
                ctx.send(node, 3, MsgClass::Query, 1, 1, ms(1), ());
            }
        }
        let cfg = ShardConfig { seed: 1, shards: 2, nodes: 4, window: ms(5), threads: 1 };
        run_sharded(&cfg, vec![Bad, Bad], SimTime::INFINITY);
    }

    #[test]
    fn until_bounds_the_run() {
        let cfg = ShardConfig { seed: 42, shards: 4, nodes: 8, window: ms(5), threads: 2 };
        let worlds: Vec<TokenRing> =
            (0..cfg.shards).map(|_| TokenRing { nodes: cfg.nodes, log: Vec::new() }).collect();
        let run = run_sharded(&cfg, worlds, ms(52));
        let delivered: usize = run.worlds.iter().map(|w| w.log.len()).sum();
        // Deliveries land at 6, 11, …, 51 ms: ten of them before 52 ms.
        assert_eq!(delivered, 10);
    }

    #[test]
    fn sparse_schedules_skip_empty_windows() {
        struct Sparse {
            fired: Vec<u64>,
        }
        impl ShardWorld for Sparse {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut ShardCtx<'_, ()>) {
                if ctx.shard() == 0 {
                    ctx.schedule(SimTime::from_secs(3600), 0, 0);
                }
            }
            fn on_message(&mut self, _: &mut ShardCtx<'_, ()>, _: u32, _: u32, _: ()) {}
            fn on_timer(&mut self, ctx: &mut ShardCtx<'_, ()>, _: u32, _: u64) {
                self.fired.push(ctx.now().as_micros());
            }
        }
        let cfg = ShardConfig { seed: 1, shards: 2, nodes: 4, window: ms(5), threads: 2 };
        let run = run_sharded(
            &cfg,
            vec![Sparse { fired: Vec::new() }, Sparse { fired: Vec::new() }],
            SimTime::INFINITY,
        );
        assert_eq!(run.worlds[0].fired, vec![3_600_000_000]);
        // An hour at 5 ms/window is 720k windows naively; the jump
        // reaches the event in a couple of barrier rounds.
        assert!(run.windows < 10, "expected window jumping, ran {} rounds", run.windows);
    }
}
