//! Network latency models.
//!
//! §V-B: "For the P2P approach, we added 5ms (typical network latency of
//! T1) as the network latency for each network query." [`ConstantPerHop`]
//! reproduces exactly that accounting; [`UniformJitter`] adds bounded
//! random jitter for robustness experiments (the conclusions must not
//! depend on perfectly constant links).

use crate::time::SimTime;
use detrand::{Rng, RngCore};

/// Maps an overlay transfer (some number of underlay/overlay hops) to a
/// delivery delay.
///
/// The trait is object-safe (`&mut dyn RngCore`) so a [`crate::Sim`] can
/// hold any model behind a `Box`.
pub trait LatencyModel: Send + Sync {
    /// Delay for a message that traverses `hops` overlay hops.
    /// `rng` allows stochastic models while keeping runs deterministic.
    fn delay(&self, hops: u32, rng: &mut dyn RngCore) -> SimTime;
}

/// The paper's model: a fixed per-hop latency (default 5 ms).
#[derive(Clone, Copy, Debug)]
pub struct ConstantPerHop {
    /// Latency charged per hop.
    pub per_hop: SimTime,
}

impl ConstantPerHop {
    /// The paper's 5 ms T1 latency.
    pub const fn paper() -> Self {
        ConstantPerHop { per_hop: SimTime::from_millis(5) }
    }

    /// A custom per-hop latency.
    pub const fn new(per_hop: SimTime) -> Self {
        ConstantPerHop { per_hop }
    }
}

impl Default for ConstantPerHop {
    fn default() -> Self {
        Self::paper()
    }
}

impl LatencyModel for ConstantPerHop {
    fn delay(&self, hops: u32, _rng: &mut dyn RngCore) -> SimTime {
        SimTime(self.per_hop.0.saturating_mul(hops as u64))
    }
}

/// Per-hop latency drawn uniformly from `[base − jitter, base + jitter]`.
#[derive(Clone, Copy, Debug)]
pub struct UniformJitter {
    /// Mean per-hop latency.
    pub base: SimTime,
    /// Maximum absolute deviation per hop.
    pub jitter: SimTime,
}

impl UniformJitter {
    /// Construct; `jitter` must not exceed `base`.
    pub fn new(base: SimTime, jitter: SimTime) -> Self {
        assert!(jitter.0 <= base.0, "jitter must not exceed base latency");
        UniformJitter { base, jitter }
    }
}

impl LatencyModel for UniformJitter {
    fn delay(&self, hops: u32, rng: &mut dyn RngCore) -> SimTime {
        let mut total = 0u64;
        for _ in 0..hops {
            let lo = self.base.0 - self.jitter.0;
            let hi = self.base.0 + self.jitter.0;
            total = total.saturating_add(rng.gen_range(lo..=hi));
        }
        SimTime(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::{rngs::StdRng, SeedableRng};

    #[test]
    fn constant_is_linear_in_hops() {
        let m = ConstantPerHop::paper();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.delay(0, &mut rng), SimTime::ZERO);
        assert_eq!(m.delay(1, &mut rng), SimTime::from_millis(5));
        assert_eq!(m.delay(9, &mut rng), SimTime::from_millis(45));
    }

    #[test]
    fn jitter_within_bounds() {
        let m = UniformJitter::new(SimTime::from_millis(5), SimTime::from_millis(2));
        let mut rng = StdRng::seed_from_u64(7);
        for hops in 1..10u32 {
            let d = m.delay(hops, &mut rng).as_micros();
            assert!(d >= 3_000 * hops as u64 && d <= 7_000 * hops as u64);
        }
    }

    #[test]
    fn jitter_deterministic_under_seed() {
        let m = UniformJitter::new(SimTime::from_millis(5), SimTime::from_millis(2));
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| m.delay(3, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| m.delay(3, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn jitter_larger_than_base_rejected() {
        let _ = UniformJitter::new(SimTime::from_millis(1), SimTime::from_millis(2));
    }
}
