//! The discrete-event engine.
//!
//! [`Sim`] owns the virtual clock, the event queue, the RNG, the latency
//! model and the [`Metrics`] tally. Protocol state lives entirely in a
//! [`World`] implementation; the engine pops one event at a time and hands
//! it to the world together with `&mut Sim`, so handlers can send further
//! messages, arm timers and read the clock.
//!
//! Determinism: events are ordered by `(time, sequence-number)`, where the
//! sequence number is assigned at scheduling time. Two runs with the same
//! seed and the same workload therefore produce byte-identical metrics —
//! the property that makes the reproduced figures exactly re-runnable.

use crate::calendar::CalendarQueue;
use crate::fault::{FaultConfig, FaultPlane, FaultStats};
use crate::geoplane::{GeoConfig, GeoPlane};
use crate::latency::{ConstantPerHop, LatencyModel};
use crate::metrics::{Metrics, MsgClass};
use crate::time::SimTime;
use crate::trace::{EventId, SpanId, TraceEvent, TraceKind, TraceSink};
use detrand::{rngs::StdRng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Index of a simulated node (dense, assigned by the application).
pub type NodeIndex = usize;

/// Handle for a cancellable timer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(u64);

/// Protocol logic driven by the engine.
pub trait World<M> {
    /// A message from `from` has arrived at `to`.
    fn on_message(&mut self, sim: &mut Sim<M>, to: NodeIndex, from: NodeIndex, msg: M);

    /// A timer armed with [`Sim::set_timer`] (or an absolute event from
    /// [`Sim::schedule`]) has fired at `node`. `kind` is the caller's tag.
    fn on_timer(&mut self, sim: &mut Sim<M>, node: NodeIndex, kind: u64);
}

enum EventKind<M> {
    Deliver { to: NodeIndex, from: NodeIndex, msg: M },
    Timer { node: NodeIndex, kind: u64, id: u64 },
}

struct Scheduled<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
    /// Trace id of the `Send`/`TimerSet` record that enqueued this
    /// event (0 when tracing is off). Never participates in ordering.
    trace_id: EventId,
    /// Trace context tag captured at scheduling time (0 = untagged).
    ctx: u64,
}

// Order by (time, seq) — BinaryHeap is a max-heap, so wrap in Reverse at
// the call sites. Only time/seq participate in the ordering.
impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Which event-queue implementation the engine runs on.
///
/// Both honor the exact `(time, seq)` ordering contract, so a run is
/// byte-identical under either scheduler (a property test and the
/// committed-CSV gates check this). `Heap` is the long-standing
/// baseline; `Calendar` is the O(1)-amortized bucketed queue
/// ([`crate::calendar`]) that keeps per-event cost flat on
/// million-event backlogs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// `BinaryHeap<Reverse<Scheduled>>`: O(log n) push/pop.
    #[default]
    Heap,
    /// Bucketed calendar queue: O(1) amortized push/pop.
    Calendar,
}

/// The engine's internal event queue, selected by [`SchedulerKind`].
enum EventQueue<M> {
    Heap(BinaryHeap<Reverse<Scheduled<M>>>),
    Calendar {
        q: CalendarQueue<Scheduled<M>>,
        /// One-slot lookahead so `next_time` (a peek) works on a queue
        /// that only supports pop. Always the global minimum when set.
        peeked: Option<Scheduled<M>>,
    },
}

impl<M> EventQueue<M> {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            SchedulerKind::Calendar => {
                EventQueue::Calendar { q: CalendarQueue::new(), peeked: None }
            }
        }
    }

    fn push(&mut self, ev: Scheduled<M>) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(ev)),
            EventQueue::Calendar { q, peeked } => {
                // Restore the lookahead first so the slot stays the
                // minimum (the new event may sort before it).
                if let Some(p) = peeked.take() {
                    q.push(p.time.as_micros(), p.seq, p);
                }
                q.push(ev.time.as_micros(), ev.seq, ev);
            }
        }
    }

    fn pop(&mut self) -> Option<Scheduled<M>> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(ev)| ev),
            EventQueue::Calendar { q, peeked } => {
                peeked.take().or_else(|| q.pop().map(|(_, _, ev)| ev))
            }
        }
    }

    /// Time of the earliest queued event, if any.
    fn next_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(ev)| ev.time),
            EventQueue::Calendar { q, peeked } => {
                if peeked.is_none() {
                    *peeked = q.pop().map(|(_, _, ev)| ev);
                }
                peeked.as_ref().map(|ev| ev.time)
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar { q, peeked } => q.len() + usize::from(peeked.is_some()),
        }
    }
}

/// Configuration for a simulation run.
pub struct SimConfig {
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Latency model (defaults to the paper's 5 ms/hop).
    pub latency: Box<dyn LatencyModel>,
    /// Optional fault plane (drop/duplicate/jitter/crash). `None` — the
    /// default — keeps the clean delivery path bit-for-bit unchanged:
    /// no extra RNG draws, no extra branches with observable effects.
    pub faults: Option<FaultConfig>,
    /// Optional WAN latency plane (region topology, seeded jitter,
    /// region-cut partitions — see [`crate::geoplane`]). `None` — the
    /// default — or a zero topology keeps runs byte-identical to
    /// pre-geo builds.
    pub geo: Option<GeoConfig>,
    /// Optional trace sink (see [`crate::trace`]). `None` — the default
    /// — keeps the run allocation-free and byte-identical to an
    /// untraced run.
    pub trace: Option<Box<dyn TraceSink>>,
    /// Event-queue implementation. `Heap` (the default) is the
    /// long-standing baseline; `Calendar` gives O(1) amortized
    /// scheduling for large runs. Either way, runs are byte-identical.
    pub scheduler: SchedulerKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            latency: Box::new(ConstantPerHop::paper()),
            faults: None,
            geo: None,
            trace: None,
            scheduler: SchedulerKind::default(),
        }
    }
}

impl SimConfig {
    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the latency model.
    pub fn with_latency(mut self, latency: Box<dyn LatencyModel>) -> Self {
        self.latency = latency;
        self
    }

    /// Enable fault injection.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Install a WAN latency plane (region topology + seeded jitter).
    pub fn with_geo(mut self, geo: GeoConfig) -> Self {
        self.geo = Some(geo);
        self
    }

    /// Install a trace sink (causal event records + spans).
    pub fn with_trace(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Select the event-queue implementation.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Build the engine.
    pub fn build<M>(self) -> Sim<M> {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(self.scheduler),
            seq: 0,
            next_timer: 0,
            cancelled: HashSet::new(),
            rng: StdRng::seed_from_u64(self.seed),
            latency: self.latency,
            metrics: Metrics::new(),
            faults: self.faults.map(FaultPlane::new),
            geo: self.geo.map(GeoPlane::new),
            geo_parked: Vec::new(),
            trace: self.trace,
            next_event_id: 1,
            current_cause: 0,
            trace_ctx: 0,
        }
    }
}

/// The discrete-event simulator.
pub struct Sim<M> {
    now: SimTime,
    queue: EventQueue<M>,
    seq: u64,
    next_timer: u64,
    cancelled: HashSet<u64>,
    rng: StdRng,
    latency: Box<dyn LatencyModel>,
    metrics: Metrics,
    faults: Option<FaultPlane>,
    geo: Option<GeoPlane>,
    /// Deliveries parked mid-flight by a region cut (see
    /// [`Sim::sever_regions`]): seq already assigned, released back
    /// into the queue — in original order — when their pair heals.
    geo_parked: Vec<Scheduled<M>>,
    trace: Option<Box<dyn TraceSink>>,
    /// Next trace-record id; advanced only while a sink is installed.
    next_event_id: EventId,
    /// Trace id of the delivery/firing whose handler is running (0
    /// outside handlers): the cause recorded for sends and timers.
    current_cause: EventId,
    /// Application-attached subject tag copied onto every record until
    /// cleared (see [`Sim::set_trace_ctx`]).
    trace_ctx: u64,
}

impl<M> Sim<M> {
    /// Engine with default configuration (paper latency, fixed seed).
    pub fn new() -> Sim<M> {
        SimConfig::default().build()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still queued (including lazily cancelled timers).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics, for costs computed outside the event loop
    /// (e.g. a synchronous query path that still wants accounting).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The deterministic RNG.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Delay the latency model assigns to `hops` overlay hops, advancing
    /// the RNG (stochastic models) deterministically.
    pub fn latency_for(&mut self, hops: u32) -> SimTime {
        self.latency.delay(hops, &mut self.rng)
    }

    /// Send a message: records `class`/`bytes`/`hops` in the metrics and
    /// schedules delivery after the model's delay for `hops` hops.
    ///
    /// `hops` is the number of overlay hops the routing layer reports for
    /// reaching `to` (1 when the sender already knows the target's
    /// address, `O(log N)` for a fresh DHT lookup).
    pub fn send(
        &mut self,
        from: NodeIndex,
        to: NodeIndex,
        class: MsgClass,
        bytes: usize,
        hops: u32,
        msg: M,
    )
    where
        M: Clone,
    {
        self.metrics.record(class, bytes, hops);
        let delay = self.latency.delay(hops, &mut self.rng);
        let mut time = self.now + delay;
        // The geo plane charges its wire cost (and jitter draw, from its
        // own RNG) before the fault plane judges the delivery: distance
        // and loss are independent planes with independent seeds. A
        // severed region pair parks the copies instead of queueing them.
        let mut severed = false;
        if let Some(geo) = self.geo.as_mut() {
            time = time + geo.extra_delay(from, to, bytes);
            severed = geo.sites_severed(from, to);
        }
        if let Some(plane) = self.faults.as_mut() {
            let verdict = plane.judge(from, to);
            if verdict.copies == 0 {
                self.trace_emit(TraceKind::Drop, to, from, Some(class), bytes as u32, hops, time);
                return;
            }
            for copy in 0..verdict.copies {
                let at = time + verdict.extra_delay[copy as usize];
                let trace_id =
                    self.trace_emit(TraceKind::Send, to, from, Some(class), bytes as u32, hops, at);
                self.dispatch(
                    Scheduled {
                        time: at,
                        seq: 0, // filled by dispatch
                        kind: EventKind::Deliver { to, from, msg: msg.clone() },
                        trace_id,
                        ctx: self.trace_ctx,
                    },
                    severed,
                );
            }
            return;
        }
        let trace_id =
            self.trace_emit(TraceKind::Send, to, from, Some(class), bytes as u32, hops, time);
        self.dispatch(
            Scheduled {
                time,
                seq: 0, // filled by dispatch
                kind: EventKind::Deliver { to, from, msg },
                trace_id,
                ctx: self.trace_ctx,
            },
            severed,
        );
    }

    /// Deliver a message locally (same node): no metrics, no delay beyond
    /// one event-queue round, preserving causal ordering with in-flight
    /// traffic.
    pub fn send_local(&mut self, node: NodeIndex, msg: M) {
        let time = self.now;
        let trace_id = self.trace_emit(TraceKind::Send, node, node, None, 0, 0, time);
        self.push(Scheduled {
            time,
            seq: 0,
            kind: EventKind::Deliver { to: node, from: node, msg },
            trace_id,
            ctx: self.trace_ctx,
        });
    }

    /// Arm a relative timer at `node`, firing after `delay` with tag
    /// `kind`. Returns a handle for [`Sim::cancel_timer`].
    pub fn set_timer(&mut self, node: NodeIndex, delay: SimTime, kind: u64) -> TimerId {
        self.schedule(self.now + delay, node, kind)
    }

    /// Schedule an absolute-time event at `node` (used to inject workload
    /// arrivals). Returns a cancellable handle like a timer.
    pub fn schedule(&mut self, at: SimTime, node: NodeIndex, kind: u64) -> TimerId {
        assert!(at >= self.now, "cannot schedule into the past");
        let id = self.next_timer;
        self.next_timer += 1;
        let trace_id = self.trace_emit(TraceKind::TimerSet, node, node, None, 0, 0, at);
        self.push(Scheduled {
            time: at,
            seq: 0,
            kind: EventKind::Timer { node, kind, id },
            trace_id,
            ctx: self.trace_ctx,
        });
        TimerId(id)
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a
    /// no-op (lazy cancellation).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    /// Is a fault plane configured?
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The fault plane, if configured (crash injection, RPC loss
    /// sampling, fault parameters).
    pub fn faults_mut(&mut self) -> Option<&mut FaultPlane> {
        self.faults.as_mut()
    }

    /// Fault statistics, if a plane is configured.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|p| *p.stats())
    }

    /// Crash `node` mid-protocol: deliveries to or from it — including
    /// messages already in flight — are discarded from now on. Timers at
    /// the node still fire (the world is expected to ignore events at
    /// nodes it knows are dead). Requires a fault plane; configure one
    /// with [`FaultConfig::none`] if only crashes are wanted.
    pub fn crash_node(&mut self, node: NodeIndex) {
        self.faults
            .as_mut()
            .expect("crash_node requires a fault plane (SimConfig::with_faults)")
            .crash(node);
    }

    /// Has `node` been crashed via [`Sim::crash_node`]?
    pub fn node_crashed(&self, node: NodeIndex) -> bool {
        self.faults.as_ref().is_some_and(|p| p.is_crashed(node))
    }

    fn push(&mut self, mut ev: Scheduled<M>) {
        ev.seq = self.seq;
        self.seq += 1;
        self.queue.push(ev);
    }

    /// Queue a delivery, or park it if its region pair is severed. The
    /// sequence number is assigned either way, so the release order
    /// after a heal is exactly the original send order.
    fn dispatch(&mut self, mut ev: Scheduled<M>, severed: bool) {
        if severed {
            ev.seq = self.seq;
            self.seq += 1;
            self.geo_parked.push(ev);
        } else {
            self.push(ev);
        }
    }

    /// Is a geo (WAN latency) plane configured?
    pub fn has_geo(&self) -> bool {
        self.geo.is_some()
    }

    /// The geo plane, if configured.
    pub fn geo(&self) -> Option<&GeoPlane> {
        self.geo.as_ref()
    }

    /// Per-region-pair traffic counters, if a geo plane is configured.
    pub fn geo_stats(&self) -> Option<&geo::GeoStats> {
        self.geo.as_ref().map(|g| g.stats())
    }

    /// Deliveries currently parked behind a region cut (not counted in
    /// [`Sim::pending`], so a partitioned run still quiesces).
    pub fn parked_deliveries(&self) -> usize {
        self.geo_parked.len()
    }

    /// Sever the (symmetric) link between two regions: from now on,
    /// deliveries whose endpoints straddle the cut are parked — not
    /// dropped — until [`Sim::heal_regions`]. Messages already in
    /// flight when the cut lands still deliver (they left the NIC).
    /// Requires a geo plane.
    pub fn sever_regions(&mut self, a: geo::RegionId, b: geo::RegionId) {
        self.geo
            .as_mut()
            .expect("sever_regions requires a geo plane (SimConfig::with_geo)")
            .sever(a, b);
    }

    /// Heal the link between two regions and release the parked
    /// deliveries for it, in original sequence order, no earlier than
    /// the current clock.
    pub fn heal_regions(&mut self, a: geo::RegionId, b: geo::RegionId) {
        if let Some(g) = self.geo.as_mut() {
            g.heal(a, b);
        }
        self.release_unsevered();
    }

    /// Heal every severed region pair and release everything parked.
    pub fn heal_all_regions(&mut self) {
        if let Some(g) = self.geo.as_mut() {
            g.heal_all();
        }
        self.release_unsevered();
    }

    /// Re-queue parked deliveries whose region pair is no longer
    /// severed. Original sequence numbers are kept, so ties at the
    /// release time replay in send order; delivery times in the past
    /// are clamped to `now` (the partition held the bytes, it did not
    /// reorder them).
    fn release_unsevered(&mut self) {
        if self.geo_parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.geo_parked);
        for mut ev in parked {
            let still_severed = match (&ev.kind, self.geo.as_ref()) {
                (EventKind::Deliver { to, from, .. }, Some(g)) => g.sites_severed(*from, *to),
                _ => false,
            };
            if still_severed {
                self.geo_parked.push(ev);
            } else {
                if ev.time < self.now {
                    ev.time = self.now;
                }
                self.queue.push(ev);
            }
        }
    }

    /// Hand one record to the sink, if any. Returns the assigned id
    /// (0 with tracing off). Cause and context come from the engine
    /// state at the moment of recording.
    #[allow(clippy::too_many_arguments)]
    fn trace_emit(
        &mut self,
        kind: TraceKind,
        node: NodeIndex,
        peer: NodeIndex,
        class: Option<MsgClass>,
        bytes: u32,
        hops: u32,
        deliver_at: SimTime,
    ) -> EventId {
        let Some(sink) = self.trace.as_mut() else {
            return 0;
        };
        let id = self.next_event_id;
        self.next_event_id += 1;
        sink.on_event(&TraceEvent {
            id,
            cause: self.current_cause,
            kind,
            at: self.now,
            deliver_at,
            node,
            peer,
            class,
            bytes,
            hops,
            ctx: self.trace_ctx,
        });
        id
    }

    /// Like [`Sim::trace_emit`] but for records produced while popping
    /// the queue: the cause is the `Send`/`TimerSet` that enqueued the
    /// event and the context travels with it.
    fn trace_emit_popped(
        &mut self,
        kind: TraceKind,
        node: NodeIndex,
        peer: NodeIndex,
        class: Option<MsgClass>,
        cause: EventId,
        ctx: u64,
    ) -> EventId {
        let Some(sink) = self.trace.as_mut() else {
            return 0;
        };
        let id = self.next_event_id;
        self.next_event_id += 1;
        sink.on_event(&TraceEvent {
            id,
            cause,
            kind,
            at: self.now,
            deliver_at: self.now,
            node,
            peer,
            class,
            bytes: 0,
            hops: 0,
            ctx,
        });
        id
    }

    /// Is a trace sink installed?
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Install a trace sink mid-run (records start at the next event).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Remove and return the trace sink, e.g. to inspect a recorder
    /// after the run.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Tag every subsequently recorded event with `ctx` (until
    /// [`Sim::clear_trace_ctx`]). The peertrack layer uses this to mark
    /// single-object operations with a digest of the object id; `0`
    /// means untagged. No-op cheap when tracing is off (one store).
    pub fn set_trace_ctx(&mut self, ctx: u64) {
        self.trace_ctx = ctx;
    }

    /// Clear the context tag set by [`Sim::set_trace_ctx`].
    pub fn clear_trace_ctx(&mut self) {
        self.trace_ctx = 0;
    }

    /// Open an application-level span at `node` (see
    /// `peertrack::spans` for the kind registry). Returns 0 when
    /// tracing is off; [`Sim::span_close`] ignores 0.
    pub fn span_open(&mut self, kind: u32, node: NodeIndex) -> SpanId {
        let (now, cause) = (self.now, self.current_cause);
        match self.trace.as_mut() {
            Some(sink) => sink.span_open(kind, node, now, cause),
            None => 0,
        }
    }

    /// Close a span at the current virtual time.
    pub fn span_close(&mut self, span: SpanId) {
        self.span_close_at(span, self.now);
    }

    /// Close a span at an explicit time — for synchronous operations
    /// (queries) whose simulated duration is computed rather than
    /// played through the event queue.
    pub fn span_close_at(&mut self, span: SpanId, at: SimTime) {
        if span == 0 {
            return;
        }
        if let Some(sink) = self.trace.as_mut() {
            sink.span_close(span, at);
        }
    }

    /// Record the hop path of a DHT lookup (`path` = nodes visited
    /// after the origin, in routing order). No-op when tracing is off;
    /// callers should still gate on [`Sim::tracing`] to avoid building
    /// the path vector for nothing.
    pub fn trace_lookup_path(&mut self, origin: NodeIndex, path: &[NodeIndex]) {
        if self.trace.is_none() {
            return;
        }
        for (i, &node) in path.iter().enumerate() {
            self.trace_emit(TraceKind::LookupHop, node, origin, None, 0, (i + 1) as u32, self.now);
        }
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub fn step<W: World<M>>(&mut self, world: &mut W) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            match ev.kind {
                EventKind::Timer { id, node, kind } => {
                    if self.cancelled.remove(&id) {
                        continue; // skip cancelled, try next event
                    }
                    self.now = ev.time;
                    let fired = self.trace_emit_popped(
                        TraceKind::TimerFired,
                        node,
                        node,
                        None,
                        ev.trace_id,
                        ev.ctx,
                    );
                    self.current_cause = fired;
                    world.on_timer(self, node, kind);
                    self.current_cause = 0;
                }
                EventKind::Deliver { to, from, msg } => {
                    self.now = ev.time;
                    // A crash takes effect immediately: messages already in
                    // flight toward the crashed node are discarded at
                    // delivery time.
                    if let Some(plane) = self.faults.as_mut() {
                        if plane.is_crashed(to) {
                            plane.note_delivery_to_crashed();
                            self.trace_emit_popped(
                                TraceKind::Drop,
                                to,
                                from,
                                None,
                                ev.trace_id,
                                ev.ctx,
                            );
                            continue;
                        }
                    }
                    let delivered = self.trace_emit_popped(
                        TraceKind::Deliver,
                        to,
                        from,
                        None,
                        ev.trace_id,
                        ev.ctx,
                    );
                    self.current_cause = delivered;
                    world.on_message(self, to, from, msg);
                    self.current_cause = 0;
                }
            }
            return true;
        }
    }

    /// Run until no events remain.
    pub fn run_until_quiescent<W: World<M>>(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until the clock would pass `deadline` (events at exactly
    /// `deadline` are processed). Remaining events stay queued.
    pub fn run_until<W: World<M>>(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            match self.queue.next_time() {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

impl<M> Default for Sim<M> {
    fn default() -> Self {
        Sim::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ms;

    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, String)>,
    }

    impl World<&'static str> for Recorder {
        fn on_message(
            &mut self,
            sim: &mut Sim<&'static str>,
            to: NodeIndex,
            from: NodeIndex,
            msg: &'static str,
        ) {
            self.log.push((sim.now().as_micros(), format!("msg {from}->{to}: {msg}")));
            if msg == "ping" {
                sim.send(to, from, MsgClass::Query, 4, 1, "pong");
            }
        }

        fn on_timer(&mut self, sim: &mut Sim<&'static str>, node: NodeIndex, kind: u64) {
            self.log.push((sim.now().as_micros(), format!("timer {kind} @ {node}")));
        }
    }

    #[test]
    fn message_delivered_after_latency() {
        let mut sim: Sim<&'static str> = SimConfig::default().build();
        let mut w = Recorder::default();
        sim.send(0, 1, MsgClass::Query, 4, 3, "hello"); // 3 hops * 5ms
        sim.run_until_quiescent(&mut w);
        assert_eq!(w.log, vec![(15_000, "msg 0->1: hello".into())]);
        assert_eq!(sim.now(), ms(15));
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim: Sim<&'static str> = SimConfig::default().build();
        let mut w = Recorder::default();
        sim.send(0, 1, MsgClass::Query, 4, 1, "ping");
        sim.run_until_quiescent(&mut w);
        assert_eq!(w.log.len(), 2);
        assert_eq!(w.log[1].0, 10_000); // 5ms out + 5ms back
        assert_eq!(sim.metrics().total_messages(), 2);
        assert_eq!(sim.metrics().total_hops(), 2);
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut sim: Sim<&'static str> = SimConfig::default().build();
        let mut w = Recorder::default();
        sim.set_timer(0, ms(10), 1);
        sim.set_timer(0, ms(5), 2);
        sim.set_timer(0, ms(10), 3); // ties with kind=1; scheduled later
        sim.run_until_quiescent(&mut w);
        let kinds: Vec<_> = w.log.iter().map(|(_, s)| s.clone()).collect();
        assert_eq!(kinds, vec!["timer 2 @ 0", "timer 1 @ 0", "timer 3 @ 0"]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim: Sim<&'static str> = SimConfig::default().build();
        let mut w = Recorder::default();
        let t = sim.set_timer(0, ms(5), 7);
        sim.set_timer(0, ms(6), 8);
        sim.cancel_timer(t);
        sim.run_until_quiescent(&mut w);
        assert_eq!(w.log.len(), 1);
        assert!(w.log[0].1.contains("timer 8"));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<&'static str> = SimConfig::default().build();
        let mut w = Recorder::default();
        sim.set_timer(0, ms(5), 1);
        sim.set_timer(0, ms(50), 2);
        sim.run_until(&mut w, ms(10));
        assert_eq!(w.log.len(), 1);
        assert_eq!(sim.now(), ms(10));
        assert_eq!(sim.pending(), 1);
        sim.run_until_quiescent(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn schedule_absolute_and_local_send() {
        let mut sim: Sim<&'static str> = SimConfig::default().build();
        let mut w = Recorder::default();
        sim.schedule(ms(42), 3, 9);
        sim.send_local(2, "loopback");
        sim.run_until_quiescent(&mut w);
        assert_eq!(w.log[0], (0, "msg 2->2: loopback".into()));
        assert_eq!(w.log[1], (42_000, "timer 9 @ 3".into()));
        // Local sends are free.
        assert_eq!(sim.metrics().total_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim: Sim<&'static str> = SimConfig::default().build();
        let mut w = Recorder::default();
        sim.set_timer(0, ms(5), 1);
        sim.run_until_quiescent(&mut w);
        sim.schedule(ms(1), 0, 2);
    }

    #[test]
    fn calendar_scheduler_is_a_drop_in() {
        fn run(kind: SchedulerKind) -> (Vec<(u64, String)>, String) {
            let mut sim: Sim<&'static str> = SimConfig::default()
                .with_scheduler(kind)
                .with_latency(Box::new(crate::latency::UniformJitter::new(ms(5), ms(2))))
                .build();
            let mut w = Recorder::default();
            for i in 0..50 {
                sim.send(0, 1, MsgClass::Lookup, 8, 1 + (i % 4), "ping");
                sim.set_timer(0, ms(i as u64), i as u64);
            }
            let t = sim.set_timer(0, ms(3), 999);
            sim.cancel_timer(t);
            sim.run_until(&mut w, ms(20));
            sim.run_until_quiescent(&mut w);
            (w.log, format!("{:?}", sim.metrics()))
        }
        assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Calendar));
    }

    #[test]
    fn zero_geo_topology_is_byte_identical_to_no_geo() {
        // The wan byte-identity contract at engine level: installing a
        // single-region zero-latency plane changes nothing — same
        // deliveries, same times, same metrics, no extra RNG draws.
        fn run(with_geo: bool) -> (Vec<(u64, String)>, String) {
            let mut cfg = SimConfig::default()
                .with_latency(Box::new(crate::latency::UniformJitter::new(ms(5), ms(2))));
            if with_geo {
                cfg = cfg.with_geo(GeoConfig::new(9, geo::Topology::single_region(4)));
            }
            let mut sim: Sim<&'static str> = cfg.build();
            let mut w = Recorder::default();
            for i in 0..30 {
                sim.send(i % 4, (i + 1) % 4, MsgClass::Lookup, 8, 1 + (i % 3) as u32, "ping");
            }
            sim.run_until_quiescent(&mut w);
            (w.log, format!("{:?}", sim.metrics()))
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wan_topology_charges_wire_cost_on_delivery() {
        // Two regions, 10 ms one-way, no jitter: exact arithmetic.
        let t = geo::Topology::new(
            vec![0, 0, 1, 1],
            vec!["a".into(), "b".into()],
            vec![0, 10_000, 10_000, 0],
            vec![0; 4],
            vec![0; 4],
        );
        let mut sim: Sim<&'static str> = SimConfig::default().with_geo(GeoConfig::new(1, t)).build();
        let mut w = Recorder::default();
        sim.send(0, 2, MsgClass::Query, 4, 1, "hello"); // 5 ms hop + 10 ms wire
        sim.send(0, 1, MsgClass::Query, 4, 1, "near"); // intra: 5 ms hop only
        sim.run_until_quiescent(&mut w);
        assert_eq!(
            w.log,
            vec![(5_000, "msg 0->1: near".into()), (15_000, "msg 0->2: hello".into())]
        );
        let stats = sim.geo_stats().unwrap();
        assert_eq!(stats.cross_msgs(), 1);
        assert_eq!(stats.cross_bytes(), 4);
    }

    #[test]
    fn region_cut_parks_and_heal_releases_in_send_order() {
        let t = geo::Topology::new(
            vec![0, 0, 1, 1],
            vec!["a".into(), "b".into()],
            vec![0; 4],
            vec![0; 4],
            vec![0; 4],
        );
        let mut sim: Sim<&'static str> = SimConfig::default().with_geo(GeoConfig::new(1, t)).build();
        let mut w = Recorder::default();
        // In flight before the cut: still delivers ("left the NIC").
        sim.send(0, 2, MsgClass::Query, 4, 1, "in-flight");
        sim.sever_regions(0, 1);
        sim.send(0, 2, MsgClass::Query, 4, 1, "first");
        sim.send(0, 3, MsgClass::Query, 4, 1, "second");
        sim.send(0, 1, MsgClass::Query, 4, 1, "intra");
        sim.run_until_quiescent(&mut w);
        assert_eq!(sim.parked_deliveries(), 2);
        let delivered: Vec<_> = w.log.iter().map(|(_, s)| s.clone()).collect();
        assert_eq!(delivered, vec!["msg 0->2: in-flight", "msg 0->1: intra"]);
        // Partitioned runs still quiesce; the heal releases in order.
        sim.heal_regions(0, 1);
        assert_eq!(sim.parked_deliveries(), 0);
        sim.run_until_quiescent(&mut w);
        let delivered: Vec<_> = w.log.iter().map(|(_, s)| s.clone()).collect();
        assert_eq!(
            delivered,
            vec!["msg 0->2: in-flight", "msg 0->1: intra", "msg 0->2: first", "msg 0->3: second"]
        );
        // Released no earlier than the heal-time clock.
        assert_eq!(w.log[2].0, w.log[1].0.max(5_000));
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn run(seed: u64) -> Vec<(u64, String)> {
            let mut sim: Sim<&'static str> = SimConfig::default()
                .with_seed(seed)
                .with_latency(Box::new(crate::latency::UniformJitter::new(ms(5), ms(2))))
                .build();
            let mut w = Recorder::default();
            for i in 0..20 {
                sim.send(0, 1, MsgClass::Lookup, 8, 1 + (i % 4), "ping");
            }
            sim.run_until_quiescent(&mut w);
            w.log
        }
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
