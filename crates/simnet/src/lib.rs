//! A deterministic discrete-event network simulator.
//!
//! The paper evaluates on **OverSim** (§V, \[3\]), a C++ overlay-network
//! simulator. This crate is the Rust substitute: it provides exactly the
//! facilities the paper's experiments consume —
//!
//! * a virtual clock and an event queue with deterministic tie-breaking
//!   ([`Sim`]), so every run with the same seed produces identical
//!   message counts and timings;
//! * message delivery with a configurable latency model
//!   ([`latency::LatencyModel`]; the paper charges a constant 5 ms of T1
//!   latency per overlay hop, §V-B);
//! * per-node timers, needed for the adaptive indexing windows
//!   (`Tmax` in §IV-A.1);
//! * message/byte/hop accounting ([`metrics::Metrics`]) — "indexing cost,
//!   measured by the total volume of messages transferred over the
//!   network" (§V-A) — with an atomic aggregate ([`metrics::SharedMetrics`])
//!   for multi-threaded experiment sweeps;
//! * an optional, separately-seeded fault plane ([`fault::FaultPlane`])
//!   that can drop, duplicate and jitter-delay deliveries or crash nodes
//!   mid-protocol, with byte-identical replay of every faulty execution;
//! * an optional WAN latency plane ([`geoplane::GeoPlane`]) that charges
//!   a `geo::Topology`'s per-region-pair wire costs on every delivery
//!   and models region-cut partitions (park-and-release, never drop),
//!   equally replayable from its own seed.
//!
//! The engine is deliberately protocol-agnostic: protocols implement
//! [`World`] and own all node state; the simulator owns time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod fault;
pub mod geoplane;
pub mod latency;
pub mod metrics;
pub mod shard;
pub mod sim;
pub mod time;
pub mod trace;

pub use calendar::CalendarQueue;
pub use fault::{FaultConfig, FaultPlane, FaultStats, LinkFaults};
pub use geoplane::{GeoConfig, GeoPlane};
pub use latency::{ConstantPerHop, LatencyModel, UniformJitter};
pub use metrics::{Metrics, MsgClass, SharedMetrics};
pub use shard::{ShardConfig, ShardCtx, ShardRun, ShardWorld};
pub use sim::{NodeIndex, SchedulerKind, Sim, SimConfig, TimerId, World};
pub use time::SimTime;
pub use trace::{EventId, SpanId, TraceEvent, TraceKind, TraceSink};
