//! Property tests for the calendar queue: pop-order equivalence with
//! `BinaryHeap<Reverse<(time, seq)>>` — the reference implementation of
//! the simulator's `(time, seq)` ordering contract — under interleaved
//! pushes and pops, including same-time seq ties, plus agreement of the
//! bounded `pop_before` with a filtered heap drain.
//!
//! Push times are generated as *deltas above the last popped time*, so
//! every schedule respects the queue's monotonic-push contract (event
//! schedules never travel backwards) while still exercising resizes,
//! ring rotations and far-future jumps.

use proptiny::prelude::*;
use simnet::CalendarQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

proptiny! {
    #![proptiny_config(Config::with_cases(96))]

    #[test]
    fn prop_pop_order_matches_binary_heap(
        ops in prop::collection::vec((0u64..50_000, 0u8..=2), 1..160),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut floor = 0u64; // last popped time — the push lower bound
        for &(delta, kind) in &ops {
            match kind {
                // A push exactly at the floor: the same-time tie case,
                // where only the seq number decides the order.
                0 => {
                    cal.push(floor, seq, seq);
                    heap.push(Reverse((floor, seq)));
                    seq += 1;
                }
                // A push above the floor (deltas up to 50 000 against a
                // 1 024-wide ring also exercise the sparse-jump scan).
                1 => {
                    cal.push(floor + delta, seq, seq);
                    heap.push(Reverse((floor + delta, seq)));
                    seq += 1;
                }
                // An interleaved pop: both queues must agree exactly.
                _ => {
                    let c = cal.pop().map(|(t, s, _)| (t, s));
                    let h = heap.pop().map(|Reverse(k)| k);
                    prop_assert_eq!(c, h);
                    if let Some((t, _)) = h {
                        floor = t;
                    }
                }
            }
        }
        // Drain both to the end — the full backlog must agree too.
        loop {
            let c = cal.pop().map(|(t, s, _)| (t, s));
            let h = heap.pop().map(|Reverse(k)| k);
            prop_assert_eq!(c, h);
            if h.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty());
    }

    #[test]
    fn prop_pop_before_agrees_with_filtered_heap(
        times in prop::collection::vec(0u64..100_000, 1..120),
        limit in 0u64..100_000,
    ) {
        let mut cal = CalendarQueue::new();
        for (i, &t) in times.iter().enumerate() {
            cal.push(t, i as u64, i);
        }
        // Everything strictly below the limit comes out, in order.
        let mut below = Vec::new();
        while let Some((t, s, _)) = cal.pop_before(limit) {
            below.push((t, s));
        }
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t < limit)
            .map(|(i, &t)| (t, i as u64))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(below, expect);
        // The rest still pops in order, all at or past the limit.
        let mut rest = Vec::new();
        while let Some((t, s, _)) = cal.pop() {
            prop_assert!(t >= limit);
            rest.push((t, s));
        }
        let mut expect_rest: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t >= limit)
            .map(|(i, &t)| (t, i as u64))
            .collect();
        expect_rest.sort_unstable();
        prop_assert_eq!(rest, expect_rest);
    }
}
