//! E3/E4 — Fig. 7: query processing time, P2P vs centralized.
//!
//! The query is the paper's: "Where has object oᵢ been?" — a lifetime
//! trace. 100 queries over different moved objects are averaged. The
//! P2P side pays 5 ms per overlay message (§V-B); the centralized side
//! runs the same data in the Wang–Liu warehouse under its calibrated
//! cost model.

use crate::{experiment_group_mode, parallel_sweep, Scale};
use centralized::Warehouse;
use moods::SiteId;
use peertrack::Builder;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use simnet::SimTime;
use workload::paper::PaperWorkload;

/// One sweep point: average trace-query time under both architectures.
#[derive(Clone, Debug)]
pub struct QueryPoint {
    /// Network size.
    pub nn: usize,
    /// Objects per node.
    pub objects_per_node: usize,
    /// Average P2P trace time (ms).
    pub p2p_ms: f64,
    /// Average centralized trace time (ms).
    pub centralized_ms: f64,
    /// Average P2P messages per query.
    pub p2p_messages: f64,
    /// STAY-table rows in the warehouse.
    pub warehouse_rows: usize,
}

/// Run one query experiment point.
pub fn run_queries(nn: usize, objects_per_node: usize, queries: usize, seed: u64) -> QueryPoint {
    let mut net =
        Builder::new().sites(nn).seed(seed).mode(experiment_group_mode()).build();
    let wl = PaperWorkload {
        sites: nn,
        objects_per_site: objects_per_node,
        seed,
        ..PaperWorkload::default()
    };
    let mut events = wl.generate();
    events.sort_by_key(|e| e.at);

    let mut warehouse = Warehouse::new();
    for ev in &events {
        for &o in &ev.objects {
            warehouse.ingest(o, ev.site, ev.at);
        }
        net.schedule_capture(ev.at, ev.site, ev.objects.clone());
    }
    net.run_until_quiescent();

    // Query the movers — objects with real 11-visit traces.
    let movers_per_site = (objects_per_node as f64 * wl.move_fraction).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF167u64);
    let mut p2p_total_us = 0u64;
    let mut p2p_msgs = 0u64;
    let mut central_total_us = 0u64;
    for _ in 0..queries {
        let site = rng.gen_range(0..nn) as u32;
        let serial = rng.gen_range(0..movers_per_site.max(1)) as u64;
        let o = workload::epc_object(site, serial);
        let from = SiteId(rng.gen_range(0..nn) as u32);

        let (path, stats) = net.trace(from, o, SimTime::ZERO, SimTime::INFINITY);
        assert!(!path.is_empty(), "mover must have a trace");
        p2p_total_us += stats.time.as_micros();
        p2p_msgs += stats.messages;

        let (cpath, ctime) = warehouse.trace_timed(o, SimTime::ZERO, SimTime::INFINITY);
        assert_eq!(cpath.len(), path.len(), "both architectures see the same history");
        central_total_us += ctime.as_micros();
    }

    QueryPoint {
        nn,
        objects_per_node,
        p2p_ms: p2p_total_us as f64 / queries as f64 / 1_000.0,
        centralized_ms: central_total_us as f64 / queries as f64 / 1_000.0,
        p2p_messages: p2p_msgs as f64 / queries as f64,
        warehouse_rows: warehouse.stay_rows(),
    }
}

/// Fig. 7a: 5 000 objects/node (scaled), network-size sweep.
pub fn fig7a(scale: Scale) -> Vec<QueryPoint> {
    let vol = scale.objects(5_000);
    let sizes: Vec<usize> = [64usize, 128, 256, 512].iter().map(|&n| scale.nodes(n)).collect();
    parallel_sweep(sizes, |&n| run_queries(n, vol, 100, 42))
}

/// Fig. 7b: 512 nodes (scaled), data-volume sweep 500·i (scaled).
pub fn fig7b(scale: Scale) -> Vec<QueryPoint> {
    let nn = scale.nodes(512);
    let volumes: Vec<usize> = (1..=10).map(|i| scale.objects(500 * i)).collect();
    parallel_sweep(volumes, |&v| run_queries(nn, v, 100, 42))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_architectures_agree_and_time_is_positive() {
        let p = run_queries(16, 60, 20, 5);
        assert!(p.p2p_ms > 0.0);
        assert!(p.centralized_ms > 0.0);
        assert!(p.p2p_messages > 1.0, "trace queries traverse multiple sites");
        assert!(p.warehouse_rows > 0);
    }

    #[test]
    fn p2p_time_tracks_trace_length_not_db_size() {
        // Fig. 7b's shape in miniature: 4x the volume should barely move
        // the P2P time but must increase the centralized time.
        let small = run_queries(16, 50, 20, 6);
        let big = run_queries(16, 200, 20, 6);
        assert!(
            big.p2p_ms < small.p2p_ms * 2.0,
            "P2P should be ~flat: {} vs {}",
            small.p2p_ms,
            big.p2p_ms
        );
        assert!(
            big.centralized_ms > small.centralized_ms,
            "centralized must grow with the database"
        );
    }
}
