//! Million-scale throughput/memory measurement for the flat engine.
//!
//! Drives [`peertrack::flat::run_flat`] over ascending geometries,
//! timing each point and sampling the process's peak RSS from
//! `/proc/self/status` (`VmHWM`). Because the high-water mark only ever
//! rises, the sweep **must** run smallest-first: each point's reading
//! then approximates its own peak (dominated by the largest run so
//! far, which is itself).
//!
//! The events/second column is the engine-health number the ROADMAP's
//! 10⁶-node / 10⁷-object target is judged by; the determinism of the
//! underlying run is gated separately (same seed, `T ∈ {1, 4}`
//! byte-identical) by `verify.sh`.

use peertrack::flat::{run_flat, FlatConfig, FlatReport};
use simnet::time::SimTime;
use std::time::Instant;

/// One measured sweep point.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Sites in the overlay.
    pub nodes: u32,
    /// Tracked objects.
    pub objects: u32,
    /// Shards the run was partitioned into.
    pub shards: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Events the engine processed.
    pub events: u64,
    /// Barrier rounds executed.
    pub windows: u64,
    /// Visit records created.
    pub records: u64,
    /// Wall-clock milliseconds for the run (excludes table building? no
    /// — includes everything `run_flat` does, tables included, since
    /// that is what a user of the engine pays).
    pub wall_ms: u64,
    /// Events per wall-clock second.
    pub events_per_sec: u64,
    /// Process peak RSS (MiB) sampled after the run; `0` when
    /// `/proc/self/status` is unavailable (non-Linux).
    pub peak_rss_mib: u64,
    /// Oracle violations of any kind (locates, ordering, IOP edges) —
    /// must be zero, carried so reports can't hide a broken run.
    pub violations: u64,
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`),
/// or `None` off Linux.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Run one geometry and measure it.
pub fn run_point(cfg: &FlatConfig) -> (ScalePoint, FlatReport) {
    let start = Instant::now();
    let report = run_flat(cfg);
    let wall_ms = start.elapsed().as_millis().max(1) as u64;
    let point = ScalePoint {
        nodes: cfg.nodes,
        objects: cfg.objects,
        shards: cfg.shards,
        threads: cfg.threads,
        events: report.events,
        windows: report.windows,
        records: report.records,
        wall_ms,
        events_per_sec: report.events * 1_000 / wall_ms,
        peak_rss_mib: peak_rss_kib().unwrap_or(0) / 1_024,
        violations: report.locates_bad + report.out_of_order + report.iop_bad,
    };
    (point, report)
}

/// The standard geometry at a given size: shards scale with the node
/// count (bounded), moves follow the paper's 10-step traces.
pub fn flat_config(nodes: u32, objects: u32) -> FlatConfig {
    FlatConfig {
        nodes,
        objects,
        shards: (nodes as usize / 4_096).clamp(8, 64),
        // Spread first captures over enough virtual time that per-µs
        // event batches stay small at 10⁷ objects.
        spread: SimTime::from_secs(120),
        ..FlatConfig::default()
    }
}

/// Ascending sweep geometries. `full` ends at the ROADMAP target of
/// 10⁶ nodes / 10⁷ objects; quick stays under a second.
pub fn sweep_sizes(full: bool) -> Vec<(u32, u32)> {
    if full {
        vec![
            (10_000, 100_000),
            (100_000, 1_000_000),
            (500_000, 5_000_000),
            (1_000_000, 10_000_000),
        ]
    } else {
        vec![(1_000, 10_000), (10_000, 100_000)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_readable_on_linux() {
        // The suite runs on Linux; a dead /proc parse would silently
        // zero the benchmark's memory column.
        let kib = peak_rss_kib().expect("VmHWM in /proc/self/status");
        assert!(kib > 1_000, "peak RSS {kib} KiB is implausibly small");
    }

    #[test]
    fn run_point_measures_a_clean_run() {
        let (p, r) = run_point(&flat_config(1_000, 5_000));
        assert_eq!(p.violations, 0);
        assert_eq!(p.events, r.events);
        assert!(p.events_per_sec > 0);
        assert!(p.records == r.records && r.records > 0);
    }
}
