//! CSV and console reporting shared by the experiment binaries.

use simnet::metrics::{Metrics, ALL_CLASSES};
use simnet::FaultStats;
use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Absolute path of `results/<file>` at the workspace root, independent
/// of the invocation directory.
pub fn results_path(file: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives two levels under the workspace root");
    root.join("results").join(file)
}

/// Write rows as CSV under `results/` (created if missing).
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Print an aligned console table.
pub fn print_table<T: Display>(title: &str, header: &[&str], rows: &[Vec<T>]) {
    println!("\n== {title} ==");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line: Vec<String> =
        header.iter().enumerate().map(|(i, h)| format!("{h:>w$}", w = widths[i])).collect();
    println!("{}", line.join("  "));
    for row in &cells {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Column names matching [`fault_stats_row`].
pub const FAULT_STATS_HEADER: [&str; 6] =
    ["delivered", "dropped", "duplicated", "jittered", "to_crashed", "delivery_rate"];

/// Render the fault plane's counters as one row of CSV/table cells —
/// the single place the delivery-rate arithmetic is formatted, so
/// `fault_sweep` and any figure binary run with faults report
/// identically.
pub fn fault_stats_row(s: &FaultStats) -> Vec<String> {
    vec![
        s.delivered.to_string(),
        s.dropped.to_string(),
        s.duplicated.to_string(),
        s.jittered.to_string(),
        s.to_crashed.to_string(),
        format!("{:.4}", s.delivery_rate()),
    ]
}

/// Print the fault-plane counters as a one-row console table.
pub fn print_fault_stats(title: &str, s: &FaultStats) {
    print_table(title, &FAULT_STATS_HEADER, &[fault_stats_row(s)]);
}

/// Column names matching [`imbalance_row`].
pub const IMBALANCE_HEADER: [&str; 4] = ["max_load", "mean_load", "p99_load", "max_over_mean"];

/// Render a per-node load distribution's imbalance statistic
/// ([`qcache::imbalance`]) as one row of CSV/table cells — the single
/// place the hot-shard arithmetic is formatted, so `zipf_sweep` and
/// `fault_sweep` report it identically.
pub fn imbalance_row(loads: &[u64]) -> Vec<String> {
    let s = qcache::imbalance(loads);
    vec![
        format!("{:.0}", s.max),
        format!("{:.2}", s.mean),
        format!("{:.0}", s.p99),
        format!("{:.3}", s.ratio),
    ]
}

/// Print the imbalance statistic as a one-row console table.
pub fn print_imbalance(title: &str, loads: &[u64]) {
    print_table(title, &IMBALANCE_HEADER, &[imbalance_row(loads)]);
}

/// Column names matching [`class_traffic_rows`].
pub const CLASS_TRAFFIC_HEADER: [&str; 4] = ["class", "messages", "model_bytes", "hops"];

/// One row per message class that carried traffic — the single place
/// per-class tallies are formatted, shared by the examples, the figure
/// binaries and the loopback-cluster bench so every surface reports the
/// accounting model identically.
pub fn class_traffic_rows(m: &Metrics) -> Vec<Vec<String>> {
    ALL_CLASSES
        .iter()
        .filter(|&&c| m.messages_of(c) > 0)
        .map(|&c| {
            vec![
                format!("{c:?}"),
                m.messages_of(c).to_string(),
                m.bytes_of(c).to_string(),
                m.hops_of(c).to_string(),
            ]
        })
        .collect()
}

/// Print the per-class traffic tally as an aligned console table, with
/// a totals row.
pub fn print_class_traffic(title: &str, m: &Metrics) {
    let mut rows = class_traffic_rows(m);
    rows.push(vec![
        "total".to_string(),
        m.total_messages().to_string(),
        m.total_bytes().to_string(),
        m.total_hops().to_string(),
    ]);
    print_table(title, &CLASS_TRAFFIC_HEADER, &rows);
}

/// Column names matching [`region_pair_row`].
pub const REGION_PAIR_HEADER: [&str; 6] = ["pair", "msgs", "p50_us", "p95_us", "p99_us", "max_us"];

/// Render one region pair's latency histogram as a row of CSV/table
/// cells — the single place per-pair latency quantiles are formatted,
/// so `wan_sweep` (real region pairs) and `fault_sweep` (the degenerate
/// single `all->all` pair) report identically.
pub fn region_pair_row(pair: &str, h: &obs::Histogram) -> Vec<String> {
    vec![
        pair.to_string(),
        h.count().to_string(),
        h.p50().to_string(),
        h.p95().to_string(),
        h.p99().to_string(),
        h.max().to_string(),
    ]
}

/// Print a set of region-pair latency histograms as an aligned console
/// table, skipping empty pairs.
pub fn print_region_pairs(title: &str, pairs: &[(String, obs::Histogram)]) {
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .filter(|(_, h)| !h.is_empty())
        .map(|(p, h)| region_pair_row(p, h))
        .collect();
    print_table(title, &REGION_PAIR_HEADER, &rows);
}

/// Least-squares slope of `log(y)` against `log(x)` — the growth
/// exponent used to classify linear vs sublinear vs superlinear series.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    assert!(n >= 2.0, "need at least two positive points");
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Gini coefficient of a load distribution (0 = perfectly balanced,
/// → 1 = one node carries everything). Fig. 8a's balance in one number.
pub fn gini(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = loads.iter().map(|&x| x as f64).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
    let n = v.len() as f64;
    let sum: f64 = v.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = v.iter().enumerate().map(|(i, x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// Lorenz-style curve for Fig. 8a: nodes sorted by load **descending**,
/// returns `(node_fraction, load_fraction)` at each 1/steps increment —
/// "the load percentage for a given node percentage".
pub fn load_curve(loads: &[u64], steps: usize) -> Vec<(f64, f64)> {
    assert!(steps > 0);
    let mut v: Vec<u64> = loads.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = v.iter().sum();
    let n = v.len();
    let mut out = Vec::with_capacity(steps + 1);
    out.push((0.0, 0.0));
    let mut acc = 0u64;
    let mut idx = 0usize;
    for s in 1..=steps {
        let upto = (n * s).div_ceil(steps);
        while idx < upto && idx < n {
            acc += v[idx];
            idx += 1;
        }
        let xf = idx as f64 / n.max(1) as f64;
        let yf = if total == 0 { 0.0 } else { acc as f64 / total as f64 };
        out.push((xf, yf));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_linear_series_is_one() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((log_log_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_quadratic_series_is_two() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((log_log_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[5, 5, 5, 5]) < 1e-9, "uniform load is perfectly balanced");
        let concentrated = gini(&[0, 0, 0, 100]);
        assert!(concentrated > 0.7, "one hot node must score high, got {concentrated}");
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_orders_balance_quality() {
        let even = gini(&[10, 10, 10, 10, 10, 10, 10, 10]);
        let mild = gini(&[16, 14, 12, 10, 8, 6, 4, 10]);
        let harsh = gini(&[70, 5, 5, 0, 0, 0, 0, 0]);
        assert!(even < mild && mild < harsh);
    }

    #[test]
    fn load_curve_monotone_and_normalized() {
        let c = load_curve(&[50, 30, 10, 10], 4);
        assert_eq!(c.first(), Some(&(0.0, 0.0)));
        assert_eq!(c.last(), Some(&(1.0, 1.0)));
        assert!(c.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 <= w[1].0));
        // 25% of nodes (the hottest) carry 50% of the load.
        assert!((c[1].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fault_stats_row_matches_header() {
        let s = FaultStats { delivered: 90, dropped: 10, duplicated: 3, jittered: 7, to_crashed: 0 };
        let row = fault_stats_row(&s);
        assert_eq!(row.len(), FAULT_STATS_HEADER.len());
        assert_eq!(row[0], "90");
        assert_eq!(row[5], "0.9000");
    }

    #[test]
    fn imbalance_row_matches_header() {
        let row = imbalance_row(&[10, 10, 40, 20]);
        assert_eq!(row.len(), IMBALANCE_HEADER.len());
        assert_eq!(row[0], "40");
        assert_eq!(row[1], "20.00");
        assert_eq!(row[3], "2.000");
    }

    #[test]
    fn region_pair_row_matches_header() {
        let mut h = obs::Histogram::new();
        h.record(10);
        h.record(20);
        let row = region_pair_row("eu->us", &h);
        assert_eq!(row.len(), REGION_PAIR_HEADER.len());
        assert_eq!(row[0], "eu->us");
        assert_eq!(row[1], "2");
        assert_eq!(row[5], "20");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("peertrack-report-test");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
