//! Who answers trace queries? §IV-B distinguishes the *gateway* case
//! from the *intermediate node* case ("if during the routing, a node
//! along the routing path has the information for the queried object,
//! the routing will be terminated"). This analysis measures the split —
//! and how it shifts with trace length: the longer an object's path,
//! the more repositories hold its IOP segments, the likelier an early
//! answer.

use bench::report::{print_table, results_path, write_csv};
use obs::SharedRecorder;
use moods::{ObjectId, SiteId};
use peertrack::query::AnswerSource;
use peertrack::Builder;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use simnet::time::secs;
use simnet::SimTime;

fn main() {
    const SITES: usize = 128;
    const OBJECTS: usize = 400;
    const QUERIES: usize = 2_000;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for trace_len in [1usize, 2, 5, 10, 20, 40] {
        let mut net = Builder::new().sites(SITES).seed(31).mode(bench::experiment_group_mode()).build();
        // Observation-only: the recorder sees every event but perturbs
        // nothing, so the breakdown columns are identical to a blind run.
        let rec = SharedRecorder::new();
        net.set_trace_sink(Box::new(rec.clone()));
        let mut rng = StdRng::seed_from_u64(77);
        let objects: Vec<ObjectId> = (0..OBJECTS as u64)
            .map(|i| ObjectId::from_raw(&i.to_be_bytes()))
            .collect();
        for (i, &o) in objects.iter().enumerate() {
            let mut t = secs(1 + i as u64);
            let mut prev = usize::MAX;
            for _ in 0..trace_len {
                let mut s = rng.gen_range(0..SITES);
                while s == prev {
                    s = rng.gen_range(0..SITES);
                }
                prev = s;
                net.schedule_capture(t, SiteId(s as u32), vec![o]);
                t = t + secs(600);
            }
        }
        net.run_until_quiescent();

        let (mut local, mut intermediate, mut gateway) = (0u64, 0u64, 0u64);
        let mut msgs = 0u64;
        for _ in 0..QUERIES {
            let o = objects[rng.gen_range(0..objects.len())];
            let from = SiteId(rng.gen_range(0..SITES) as u32);
            let (_, stats) = net.trace(from, o, SimTime::ZERO, SimTime::INFINITY);
            msgs += stats.messages;
            match stats.source {
                AnswerSource::Local => local += 1,
                AnswerSource::Intermediate(_) => intermediate += 1,
                AnswerSource::Gateway(_) => gateway += 1,
                AnswerSource::NotFound => unreachable!("all objects exist"),
                AnswerSource::Cached => unreachable!("caching is off here"),
            }
        }
        let pct = |n: u64| 100.0 * n as f64 / QUERIES as f64;
        // Modelled query latency distribution, from the QUERY_TRACE
        // span histogram the recorder builds as `net.trace` accounts
        // each query.
        let rec = rec.borrow();
        let h = rec
            .span_histogram(peertrack::spans::QUERY_TRACE)
            .expect("every cell issues trace queries");
        assert_eq!(h.count(), QUERIES as u64);
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        rows.push(vec![
            trace_len.to_string(),
            format!("{:.1}", pct(local)),
            format!("{:.1}", pct(intermediate)),
            format!("{:.1}", pct(gateway)),
            format!("{:.1}", msgs as f64 / QUERIES as f64),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
        ]);
        csv.push(vec![
            trace_len.to_string(),
            pct(local).to_string(),
            pct(intermediate).to_string(),
            pct(gateway).to_string(),
            (msgs as f64 / QUERIES as f64).to_string(),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
        ]);
    }
    print_table(
        "Query answering breakdown vs trace length (§IV-B intermediate-node effect)",
        &["trace_len", "local %", "intermediate %", "gateway %", "avg msgs", "p50 us", "p95 us", "p99 us"],
        &rows,
    );
    write_csv(
        results_path("query_breakdown.csv"),
        &[
            "trace_len",
            "local_pct",
            "intermediate_pct",
            "gateway_pct",
            "avg_msgs",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
        &csv,
    )
    .expect("write query_breakdown.csv");
    println!("\nwrote results/query_breakdown.csv");
}
