//! E5 — Fig. 8a: load balance for the three Lp schemes. Writes the
//! Lorenz-style curves to `results/fig8a.csv`.

use bench::report::{print_table, write_csv};
use bench::{fig8, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = fig8::fig8a(scale);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for p in &points {
        for (xf, yf) in &p.curve {
            rows.push(vec![
                p.scheme.label(),
                p.lp.to_string(),
                format!("{xf:.3}"),
                format!("{yf:.3}"),
            ]);
        }
    }
    let header = ["scheme", "lp", "node_fraction", "load_fraction"];
    write_csv(
        bench::report::results_path("fig8a.csv"), &header, &rows).expect("write results/fig8a.csv");

    let summary: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scheme.label(),
                p.lp.to_string(),
                format!("{:.4}", p.gini),
                format!("{:.3}", p.delta_observed),
            ]
        })
        .collect();
    print_table(
        &format!("Fig. 8a — load balance per scheme ({scale:?})"),
        &["scheme", "lp", "gini", "delta_observed"],
        &summary,
    );
    println!("\nwrote results/fig8a.csv (full curves)");
}
