//! Ablations over the design knobs §IV introduces but the paper does not
//! sweep: the delegation fraction `α`, the window bounds `Nmax`/`Tmax`,
//! `Lmin`, eager vs lazy split/merge, Data Triangles on/off, and latency
//! jitter. Writes `results/ablations.csv` and prints one table per
//! ablation.

use bench::report::{gini, print_table, results_path, write_csv};
use moods::SiteId;
use peertrack::{Builder, GroupConfig, IndexingMode, TraceableNetwork};
use detrand::{rngs::StdRng, Rng, SeedableRng};
use simnet::time::{ms, secs};
use simnet::{MsgClass, SimTime, UniformJitter};
use workload::paper::PaperWorkload;

fn feed(net: &mut TraceableNetwork, sites: usize, vol: usize, seed: u64) {
    let wl = PaperWorkload {
        sites,
        objects_per_site: vol,
        seed,
        ..PaperWorkload::default()
    };
    for ev in wl.generate() {
        net.schedule_capture(ev.at, ev.site, ev.objects);
    }
    net.run_until_quiescent();
}

fn sample_queries(net: &mut TraceableNetwork, sites: usize, vol: usize, n: usize) -> (f64, f64) {
    let movers = (vol as f64 * 0.1).round() as usize;
    let mut rng = StdRng::seed_from_u64(4242);
    let mut msgs = 0u64;
    let mut time_us = 0u64;
    for _ in 0..n {
        let o = workload::epc_object(rng.gen_range(0..sites) as u32, rng.gen_range(0..movers.max(1)) as u64);
        let from = SiteId(rng.gen_range(0..sites) as u32);
        let (_, stats) = net.trace(from, o, SimTime::ZERO, SimTime::INFINITY);
        msgs += stats.messages;
        time_us += stats.time.as_micros();
    }
    (msgs as f64 / n as f64, time_us as f64 / n as f64 / 1_000.0)
}

fn main() {
    const SITES: usize = 48;
    const VOL: usize = 400;
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let mut push_csv = |ablation: &str, setting: String, metric: &str, value: f64| {
        csv_rows.push(vec![
            ablation.to_string(),
            setting,
            metric.to_string(),
            format!("{value:.3}"),
        ]);
    };

    // ---- 1. Delegation fraction α -------------------------------------
    {
        let mut rows = Vec::new();
        for alpha in [0.25f64, 0.5, 1.0] {
            // Fixed Lp=4 concentrates the index on 16 gateways so the
            // shards actually cross the delegation threshold; Scheme 2
            // would spread the same data below it.
            let cfg = GroupConfig {
                alpha,
                scheme: peertrack::PrefixScheme::Fixed(4),
                l_min: 4,
                delegate_threshold: Some(64),
                n_max: 100_000,
                ..GroupConfig::default()
            };
            let mut net =
                Builder::new().sites(SITES).seed(1).mode(IndexingMode::Group(cfg)).build();
            feed(&mut net, SITES, VOL, 1);
            let delegate = net.metrics().messages_of(MsgClass::Delegate);
            let refresh = net.metrics().messages_of(MsgClass::Refresh);
            let (q_msgs, _) = sample_queries(&mut net, SITES, VOL, 60);
            rows.push(vec![
                format!("{alpha}"),
                delegate.to_string(),
                refresh.to_string(),
                format!("{q_msgs:.2}"),
            ]);
            push_csv("alpha", format!("{alpha}"), "delegate_msgs", delegate as f64);
            push_csv("alpha", format!("{alpha}"), "query_msgs", q_msgs);
        }
        print_table(
            "Ablation 1 — delegation fraction α (threshold 64)",
            &["alpha", "delegate_msgs", "refresh_msgs", "avg_query_msgs"],
            &rows,
        );
    }

    // ---- 2. Window bound Nmax ------------------------------------------
    {
        let mut rows = Vec::new();
        for n_max in [64usize, 256, 1024, 100_000] {
            let cfg = GroupConfig { n_max, ..GroupConfig::default() };
            let mut net =
                Builder::new().sites(SITES).seed(2).mode(IndexingMode::Group(cfg)).build();
            feed(&mut net, SITES, VOL, 2);
            let m = net.metrics();
            rows.push(vec![
                n_max.to_string(),
                m.indexing_messages().to_string(),
                m.indexing_bytes().to_string(),
            ]);
            push_csv("n_max", n_max.to_string(), "indexing_msgs", m.indexing_messages() as f64);
        }
        print_table(
            "Ablation 2 — window bound Nmax (bigger windows, fuller groups, fewer messages)",
            &["n_max", "indexing_msgs", "indexing_bytes"],
            &rows,
        );
    }

    // ---- 3. Lmin at bootstrap scale -------------------------------------
    {
        let mut rows = Vec::new();
        for l_min in [0usize, 3, 6, 9] {
            let cfg = GroupConfig { l_min, n_max: 100_000, ..GroupConfig::default() };
            let mut net = Builder::new().sites(6).seed(3).mode(IndexingMode::Group(cfg)).build();
            feed(&mut net, 6, VOL, 3);
            let m = net.metrics();
            let loads = net.load_distribution();
            rows.push(vec![
                l_min.to_string(),
                net.current_lp().to_string(),
                m.indexing_messages().to_string(),
                format!("{:.3}", gini(&loads)),
            ]);
            push_csv("l_min", l_min.to_string(), "gini", gini(&loads));
        }
        print_table(
            "Ablation 3 — Lmin on a 6-node bootstrap network (§IV-A.1)",
            &["l_min", "lp", "indexing_msgs", "load_gini"],
            &rows,
        );
    }

    // ---- 4. Eager vs lazy split/merge under growth ----------------------
    {
        let mut rows = Vec::new();
        for eager in [true, false] {
            let cfg = GroupConfig {
                eager_split_merge: eager,
                n_max: 100_000,
                ..GroupConfig::default()
            };
            let mut net = Builder::new().sites(24).seed(4).mode(IndexingMode::Group(cfg)).build();
            feed(&mut net, 24, VOL, 4);
            for _ in 0..24 {
                net.join_site();
            }
            // Move a slice of objects so lazy repair has work to do.
            let movers: Vec<_> = (0..24u32)
                .flat_map(|s| (0..10u64).map(move |i| workload::epc_object(s, i)))
                .collect();
            let t = net.now() + secs(60);
            for (i, &o) in movers.iter().enumerate() {
                net.schedule_capture(t + secs(i as u64), SiteId((i % 24) as u32), vec![o]);
            }
            net.run_until_quiescent();
            let split_merge = net.metrics().messages_of(MsgClass::SplitMerge);
            let refresh = net.metrics().messages_of(MsgClass::Refresh);
            let (q_msgs, _) = sample_queries(&mut net, 24, VOL, 60);
            rows.push(vec![
                if eager { "eager" } else { "lazy" }.to_string(),
                split_merge.to_string(),
                refresh.to_string(),
                format!("{q_msgs:.2}"),
            ]);
            push_csv(
                "split_merge",
                if eager { "eager" } else { "lazy" }.into(),
                "splitmerge_msgs",
                split_merge as f64,
            );
        }
        print_table(
            "Ablation 4 — eager vs lazy splitting/merging (§IV-A.2)",
            &["mode", "splitmerge_msgs", "refresh_msgs", "avg_query_msgs"],
            &rows,
        );
    }

    // ---- 5. Data Triangles on/off under a hot gateway -------------------
    {
        let mut rows = Vec::new();
        for (label, threshold) in [("off", None), ("on (64)", Some(64usize))] {
            let cfg = GroupConfig {
                scheme: peertrack::PrefixScheme::Fixed(2), // few, hot gateways
                l_min: 2,
                delegate_threshold: threshold,
                n_max: 100_000,
                ..GroupConfig::default()
            };
            let mut net = Builder::new().sites(16).seed(5).mode(IndexingMode::Group(cfg)).build();
            feed(&mut net, 16, VOL, 5);
            let loads = net.load_distribution();
            let hottest = *loads.iter().max().expect("non-empty");
            rows.push(vec![
                label.to_string(),
                hottest.to_string(),
                format!("{:.3}", gini(&loads)),
                net.metrics().messages_of(MsgClass::Delegate).to_string(),
            ]);
            push_csv("triangle", label.into(), "hottest_load", hottest as f64);
            push_csv("triangle", label.into(), "gini", gini(&loads));
        }
        print_table(
            "Ablation 5 — Data Triangles off/on with Lp=2 hot gateways",
            &["triangles", "hottest_node_load", "load_gini", "delegate_msgs"],
            &rows,
        );
    }

    // ---- 6. Latency jitter robustness -----------------------------------
    {
        let mut rows = Vec::new();
        for (label, latency) in [
            ("constant 5ms", None),
            ("5ms ± 4ms jitter", Some(UniformJitter::new(ms(5), ms(4)))),
        ] {
            let mut b = Builder::new().sites(SITES).seed(6).mode(bench::experiment_group_mode());
            if let Some(j) = latency {
                b = b.latency(Box::new(j));
            }
            let mut net = b.build();
            feed(&mut net, SITES, VOL, 6);
            let (q_msgs, q_ms) = sample_queries(&mut net, SITES, VOL, 100);
            rows.push(vec![label.to_string(), format!("{q_msgs:.2}"), format!("{q_ms:.2}")]);
            push_csv("jitter", label.into(), "query_ms", q_ms);
        }
        print_table(
            "Ablation 6 — query time under latency jitter",
            &["latency model", "avg_query_msgs", "avg_query_ms"],
            &rows,
        );
    }

    write_csv(
        results_path("ablations.csv"),
        &["ablation", "setting", "metric", "value"],
        &csv_rows,
    )
    .expect("write ablations.csv");
    println!("\nwrote results/ablations.csv");
}
