//! E2 — Fig. 6b: scalability of indexing on network size (three
//! series). Prints the series and writes `results/fig6b.csv`.

use bench::report::{print_table, write_csv};
use bench::{fig6, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = fig6::fig6b(scale);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.series.clone(),
                p.nn.to_string(),
                p.objects_per_node.to_string(),
                p.lp.to_string(),
                p.messages.to_string(),
                p.bytes.to_string(),
            ]
        })
        .collect();
    let header = ["series", "nn", "objects_per_node", "lp", "messages", "bytes"];
    write_csv(
        bench::report::results_path("fig6b.csv"), &header, &rows).expect("write results/fig6b.csv");
    print_table(
        &format!("Fig. 6b — indexing cost vs network size ({scale:?})"),
        &header,
        &rows,
    );
    println!("\nwrote results/fig6b.csv");
}
