//! Run every §V experiment (E1–E6), print the paper-shaped series,
//! check the shape-level acceptance criteria from DESIGN.md, and write
//! all CSVs under `results/`.
//!
//! `PEERTRACK_SCALE=full` reproduces the paper's parameters (512 nodes,
//! 5 000 objects/node — several minutes); the default `quick` scale runs
//! the same code at 1/4 network size and 1/10 volume.

use bench::report::{log_log_slope, print_table, write_csv};
use bench::{fig6, fig7, fig8, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("PeerTrack experiment suite — scale {scale:?}");
    let t0 = std::time::Instant::now();
    let mut criteria: Vec<(String, bool)> = Vec::new();

    // ---------------- E1: Fig. 6a ----------------
    let e1 = fig6::fig6a(scale);
    {
        let rows: Vec<Vec<String>> = e1
            .iter()
            .map(|p| {
                vec![
                    p.series.clone(),
                    p.objects_per_node.to_string(),
                    p.lp.to_string(),
                    p.messages.to_string(),
                    p.bytes.to_string(),
                ]
            })
            .collect();
        let header = ["series", "objects/node", "lp", "messages", "bytes"];
        print_table("E1 / Fig. 6a — indexing cost vs data volume (dynamic network)", &header, &rows);
        write_csv(
        bench::report::results_path("fig6a.csv"),
            &["series", "objects_per_node", "nn", "lp", "messages", "bytes"],
            &e1.iter()
                .map(|p| {
                    vec![
                        p.series.clone(),
                        p.objects_per_node.to_string(),
                        p.nn.to_string(),
                        p.lp.to_string(),
                        p.messages.to_string(),
                        p.bytes.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .expect("write fig6a");

        // Criteria: near-parity at the lowest volume; group cheaper at
        // the highest; group sublinear vs individual linear.
        let vols: Vec<usize> = {
            let mut v: Vec<usize> = e1.iter().map(|p| p.objects_per_node).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let at = |series: &str, vol: usize| {
            e1.iter()
                .find(|p| p.series.starts_with(series) && p.objects_per_node == vol)
                .map(|p| p.messages as f64)
                .expect("point exists")
        };
        let lo = *vols.first().unwrap();
        let hi = *vols.last().unwrap();
        let parity = at("group", lo) / at("individual", lo);
        criteria.push((format!("E1: near-parity at {lo}/node (ratio {parity:.2} in 0.4..=1.3)"), (0.4..=1.3).contains(&parity)));
        let sep_hi = at("individual", hi) / at("group", hi);
        let sep_lo = at("individual", lo) / at("group", lo);
        criteria.push((format!("E1: group cheaper at {hi}/node (factor {sep_hi:.2} > 1.05)"), sep_hi > 1.05));
        criteria.push((format!(
            "E1: separation grows with volume (factor {sep_lo:.2} @{lo} -> {sep_hi:.2} @{hi})"
        ), sep_hi > sep_lo));
        let ind_slope = log_log_slope(
            &e1.iter()
                .filter(|p| p.series.starts_with("individual"))
                .map(|p| (p.objects_per_node as f64, p.messages as f64))
                .collect::<Vec<_>>(),
        );
        let grp_slope = log_log_slope(
            &e1.iter()
                .filter(|p| p.series.starts_with("group"))
                .map(|p| (p.objects_per_node as f64, p.messages as f64))
                .collect::<Vec<_>>(),
        );
        criteria.push((format!("E1: individual ~linear in volume (slope {ind_slope:.2} in 0.9..1.1)"), (0.9..1.1).contains(&ind_slope)));
        criteria.push((format!("E1: group sublinear in volume (slope {grp_slope:.2} < individual {ind_slope:.2})"), grp_slope < ind_slope - 0.01));
    }

    // ---------------- E2: Fig. 6b ----------------
    let e2 = fig6::fig6b(scale);
    {
        let rows: Vec<Vec<String>> = e2
            .iter()
            .map(|p| {
                vec![
                    p.series.clone(),
                    p.nn.to_string(),
                    p.lp.to_string(),
                    p.messages.to_string(),
                ]
            })
            .collect();
        print_table("E2 / Fig. 6b — indexing cost vs network size", &["series", "nn", "lp", "messages"], &rows);
        write_csv(
        bench::report::results_path("fig6b.csv"),
            &["series", "nn", "objects_per_node", "lp", "messages", "bytes"],
            &e2.iter()
                .map(|p| {
                    vec![
                        p.series.clone(),
                        p.nn.to_string(),
                        p.objects_per_node.to_string(),
                        p.lp.to_string(),
                        p.messages.to_string(),
                        p.bytes.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .expect("write fig6b");

        let series_pts = |name: &str| {
            e2.iter()
                .filter(|p| p.series == name)
                .map(|p| (p.nn as f64, p.messages as f64))
                .collect::<Vec<_>>()
        };
        let ind = series_pts("individual");
        let grp_g = series_pts("group (movement in group)");
        let grp_i = series_pts("group (movement individually)");
        // Fig. 6b's finding: group stays below individual at every size,
        // but "when the size of network increases, the indexing cost for
        // the group indexing algorithm becomes closer to that for the
        // individual indexing algorithm" — the gap narrows with Nn.
        let below = ind.iter().zip(&grp_g).all(|((_, i), (_, g))| g <= i);
        criteria.push(("E2: group ≤ individual at every network size".into(), below));
        let first_gap = ind.first().unwrap().1 / grp_g.first().unwrap().1;
        let last_gap = ind.last().unwrap().1 / grp_g.last().unwrap().1;
        criteria.push((format!(
            "E2: gap narrows as Nn grows (ratio {first_gap:.2} -> {last_gap:.2})"
        ), last_gap < first_gap));
        let grouped_cheaper = grp_g
            .iter()
            .zip(&grp_i)
            .all(|((_, a), (_, b))| a <= b);
        criteria.push(("E2: movement-in-group ≤ movement-individually at every size".into(), grouped_cheaper));
    }

    // ---------------- E3: Fig. 7a ----------------
    let e3 = fig7::fig7a(scale);
    {
        let rows: Vec<Vec<String>> = e3
            .iter()
            .map(|p| {
                vec![
                    p.nn.to_string(),
                    format!("{:.2}", p.p2p_ms),
                    format!("{:.2}", p.centralized_ms),
                    format!("{:.1}", p.p2p_messages),
                    p.warehouse_rows.to_string(),
                ]
            })
            .collect();
        print_table("E3 / Fig. 7a — trace-query time vs network size", &["nn", "p2p_ms", "centralized_ms", "p2p_msgs", "db_rows"], &rows);
        write_csv(
        bench::report::results_path("fig7a.csv"),
            &["nn", "objects_per_node", "p2p_ms", "centralized_ms", "p2p_msgs", "db_rows"],
            &e3.iter()
                .map(|p| {
                    vec![
                        p.nn.to_string(),
                        p.objects_per_node.to_string(),
                        format!("{:.3}", p.p2p_ms),
                        format!("{:.3}", p.centralized_ms),
                        format!("{:.2}", p.p2p_messages),
                        p.warehouse_rows.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .expect("write fig7a");

        let p2p: Vec<f64> = e3.iter().map(|p| p.p2p_ms).collect();
        let flat = p2p.iter().cloned().fold(f64::MIN, f64::max)
            / p2p.iter().cloned().fold(f64::MAX, f64::min);
        criteria.push((format!("E3: P2P ~constant across sizes (max/min {flat:.2} ≤ 2.5)"), flat <= 2.5));
        let central_increasing = e3.windows(2).all(|w| w[0].centralized_ms < w[1].centralized_ms);
        criteria.push(("E3: centralized strictly increasing with Nn".into(), central_increasing));
        if scale == Scale::Full {
            // The crossover needs the paper's database sizes; at quick
            // scale the warehouse stays small and wins throughout.
            let crossover = e3.first().map(|p| p.centralized_ms < p.p2p_ms).unwrap_or(false)
                && e3.last().map(|p| p.centralized_ms > p.p2p_ms).unwrap_or(false);
            criteria.push(("E3: centralized wins small, P2P wins large (crossover in sweep)".into(), crossover));
        } else {
            println!("  (E3 crossover check skipped at Quick scale: the warehouse never grows past the P2P constant)");
        }
    }

    // ---------------- E4: Fig. 7b ----------------
    let e4 = fig7::fig7b(scale);
    {
        let rows: Vec<Vec<String>> = e4
            .iter()
            .map(|p| {
                vec![
                    p.objects_per_node.to_string(),
                    format!("{:.2}", p.p2p_ms),
                    format!("{:.2}", p.centralized_ms),
                ]
            })
            .collect();
        print_table("E4 / Fig. 7b — trace-query time vs data volume", &["objects/node", "p2p_ms", "centralized_ms"], &rows);
        write_csv(
        bench::report::results_path("fig7b.csv"),
            &["objects_per_node", "nn", "p2p_ms", "centralized_ms", "p2p_msgs", "db_rows"],
            &e4.iter()
                .map(|p| {
                    vec![
                        p.objects_per_node.to_string(),
                        p.nn.to_string(),
                        format!("{:.3}", p.p2p_ms),
                        format!("{:.3}", p.centralized_ms),
                        format!("{:.2}", p.p2p_messages),
                        p.warehouse_rows.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .expect("write fig7b");

        let p2p: Vec<f64> = e4.iter().map(|p| p.p2p_ms).collect();
        let flat = p2p.iter().cloned().fold(f64::MIN, f64::max)
            / p2p.iter().cloned().fold(f64::MAX, f64::min);
        criteria.push((format!("E4: P2P ~constant across volumes (max/min {flat:.2} ≤ 2.5)"), flat <= 2.5));
        let central_increasing = e4.windows(2).all(|w| w[0].centralized_ms < w[1].centralized_ms);
        criteria.push(("E4: centralized strictly increasing with volume".into(), central_increasing));
    }

    // ---------------- E5: Fig. 8a ----------------
    let e5 = fig8::fig8a(scale);
    {
        let rows: Vec<Vec<String>> = e5
            .iter()
            .map(|p| {
                vec![
                    p.scheme.label(),
                    p.lp.to_string(),
                    format!("{:.4}", p.gini),
                    format!("{:.3}", p.delta_observed),
                ]
            })
            .collect();
        print_table("E5 / Fig. 8a — load balance per Lp scheme", &["scheme", "lp", "gini", "delta"], &rows);
        let mut curve_rows = Vec::new();
        for p in &e5 {
            for (xf, yf) in &p.curve {
                curve_rows.push(vec![
                    p.scheme.label(),
                    p.lp.to_string(),
                    format!("{xf:.3}"),
                    format!("{yf:.3}"),
                ]);
            }
        }
        write_csv(
        bench::report::results_path("fig8a.csv"), &["scheme", "lp", "node_fraction", "load_fraction"], &curve_rows)
            .expect("write fig8a");

        let g = |s: peertrack::PrefixScheme| e5.iter().find(|p| p.scheme == s).unwrap().gini;
        use peertrack::PrefixScheme::*;
        criteria.push((format!(
            "E5: balance order gini(S3) {:.3} < gini(S2) {:.3} < gini(S1) {:.3}",
            g(Scheme3), g(Scheme2), g(Scheme1)
        ), g(Scheme3) < g(Scheme2) && g(Scheme2) < g(Scheme1)));
    }

    // ---------------- E6: Fig. 8b ----------------
    let e6 = fig8::fig8b(scale);
    {
        let rows: Vec<Vec<String>> = e6
            .iter()
            .map(|p| {
                vec![
                    p.scheme.label(),
                    p.nn.to_string(),
                    p.lp.to_string(),
                    p.messages.to_string(),
                    format!("{:.2}", p.log2_messages),
                ]
            })
            .collect();
        print_table("E6 / Fig. 8b — indexing cost per Lp scheme", &["scheme", "nn", "lp", "messages", "log2"], &rows);
        write_csv(
        bench::report::results_path("fig8b.csv"),
            &["scheme", "nn", "lp", "messages", "log2_messages"],
            &rows,
        )
        .expect("write fig8b");

        use peertrack::PrefixScheme::*;
        let cost = |s: peertrack::PrefixScheme, nn: usize| {
            e6.iter().find(|p| p.scheme == s && p.nn == nn).unwrap().messages
        };
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = e6.iter().map(|p| p.nn).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let ordered = sizes
            .iter()
            .all(|&n| cost(Scheme1, n) <= cost(Scheme2, n) && cost(Scheme2, n) <= cost(Scheme3, n));
        criteria.push(("E6: cost(S1) ≤ cost(S2) ≤ cost(S3) at every size".into(), ordered));
    }

    // ---------------- Verdicts ----------------
    println!("\n== Shape-level acceptance criteria (DESIGN.md §5) ==");
    let mut all_ok = true;
    for (what, ok) in &criteria {
        println!("  [{}] {}", if *ok { "PASS" } else { "FAIL" }, what);
        all_ok &= ok;
    }
    println!(
        "\n{} criteria passed in {:.1}s — CSVs under results/",
        if all_ok { "ALL" } else { "NOT ALL" },
        t0.elapsed().as_secs_f64()
    );
    if !all_ok {
        std::process::exit(1);
    }
}
