//! WAN federation sweep: flat ring vs proximity-aware placement over a
//! three-region topology (DESIGN.md §17).
//!
//! The same cross-region supply chain (`workload::wan::WanChain` — every
//! object handed off through eu → us → ap) runs twice at identical
//! seeds: once on the flat hash ring (gateways and replicas anywhere)
//! and once with region-clustered site ids (`geo::clustered_id`), which
//! makes K-successor replica sets and ring-walk hops same-region
//! without any protocol change. Reported per directed region pair:
//!
//! * protocol-plane traffic (messages/bytes) from the geo plane's
//!   wire-cost accounting,
//! * group-index flush latency (p50/p95/p99) from the per-region-pair
//!   trace recorder,
//! * verification-locate latency bucketed by (origin region, answer
//!   region), every answer checked against the movement oracle.
//!
//! Headline (asserted): proximity placement reduces cross-region bytes
//! AND cross-region locate p95 versus flat, with oracle-exact answers
//! in both modes. Writes `results/wan_sweep_{flat,proximity}.csv` and
//! `results/BENCH_wan.json`. `PEERTRACK_SCALE=full` for the larger
//! configuration.

use bench::report::{print_region_pairs, print_table, results_path, write_csv};
use bench::Scale;
use geo::Topology;
use moods::{MovementLog, SiteId};
use obs::{Histogram, SharedRegionRecorder};
use peertrack::{Builder, GroupConfig, IndexingMode, Placement};
use simnet::time::ms;
use simnet::{GeoConfig, MsgClass, SimTime};

const SEED: u64 = 0x5EED_3A17;

struct ModeResult {
    label: &'static str,
    /// Directed pair names, `[from * r + to]`.
    pair_names: Vec<String>,
    plane_msgs: Vec<u64>,
    plane_bytes: Vec<u64>,
    cross_bytes: u64,
    cross_plane_msgs: u64,
    flush: Vec<Histogram>,
    locate: Vec<Histogram>,
    locate_cross: Histogram,
    flush_cross: Histogram,
    query_wan_us: u64,
    query_cross_msgs: u64,
    exact: usize,
    locates: usize,
}

fn run_mode(topo: &Topology, objects: usize, placement: Placement) -> ModeResult {
    let label = match placement {
        Placement::Flat => "flat",
        Placement::Proximity => "proximity",
    };
    let sites = topo.sites();
    let r = topo.regions();

    let mut net = Builder::new()
        .sites(sites)
        .seed(SEED)
        .mode(IndexingMode::Group(GroupConfig {
            t_max: ms(200),
            n_max: 64,
            ..GroupConfig::default()
        }))
        .geo(GeoConfig::new(SEED ^ 0x6E0, topo.clone()))
        .placement(placement)
        .replicas(3)
        .build();

    // Per-region-pair latency recorder over the engine trace; the
    // focus class is the group-index flush traffic.
    let site_regions: Vec<u16> = (0..sites).map(|s| topo.region_of(s)).collect();
    let recorder = SharedRegionRecorder::new(site_regions, r, MsgClass::GroupIndex);
    net.set_trace_sink(Box::new(recorder.clone()));

    let chain = workload::wan::WanChain::generate(
        topo,
        objects,
        2,
        SimTime::from_secs(1),
        ms(1_000),
        ms(25),
        SEED,
    );
    let mut oracle = MovementLog::new();
    workload::replay(&mut net, &mut oracle, &chain.events);
    net.run_until_quiescent();

    // Verification locates: every object from one origin per region,
    // bucketed by (origin region, answer region), checked exact.
    let mut origins: Vec<SiteId> = Vec::with_capacity(r);
    for reg in 0..r as u16 {
        let s = (0..sites).find(|&s| topo.region_of(s) == reg).expect("region has sites");
        origins.push(SiteId(s as u32));
    }
    let mut locate: Vec<Histogram> = (0..r * r).map(|_| Histogram::new()).collect();
    let mut locate_cross = Histogram::new();
    let (mut exact, mut locates) = (0usize, 0usize);
    let (mut query_wan_us, mut query_cross_msgs) = (0u64, 0u64);
    for (k, route) in chain.routes.iter().enumerate() {
        let truth = *route.last().expect("route is non-empty");
        let object = workload::epc_object((k % r) as u32, k as u64);
        for &origin in &origins {
            let (loc, stats) = net.locate(origin, object, net.now());
            locates += 1;
            if loc == Some(truth) {
                exact += 1;
            }
            let from = topo.region_of(origin.0 as usize) as usize;
            let to = topo.region_of(truth.0 as usize) as usize;
            locate[from * r + to].record(stats.time.as_micros());
            if from != to {
                locate_cross.record(stats.time.as_micros());
            }
            query_wan_us += stats.wan.as_micros();
            query_cross_msgs += stats.cross_msgs;
        }
    }

    let stats = net.geo_stats().expect("geo plane configured");
    let mut pair_names = Vec::with_capacity(r * r);
    let mut plane_msgs = Vec::with_capacity(r * r);
    let mut plane_bytes = Vec::with_capacity(r * r);
    for a in 0..r as u16 {
        for b in 0..r as u16 {
            pair_names.push(topo.pair_name(a, b));
            plane_msgs.push(stats.msgs(a, b));
            plane_bytes.push(stats.bytes(a, b));
        }
    }
    let (cross_bytes, cross_plane_msgs) = (stats.cross_bytes(), stats.cross_msgs());
    let rec = recorder.borrow();
    let flush: Vec<Histogram> = (0..r as u16)
        .flat_map(|a| (0..r as u16).map(move |b| (a, b)))
        .map(|(a, b)| rec.focus_pair(a, b).clone())
        .collect();
    let flush_cross = rec.focus_cross();

    ModeResult {
        label,
        pair_names,
        plane_msgs,
        plane_bytes,
        cross_bytes,
        cross_plane_msgs,
        flush,
        locate,
        locate_cross,
        flush_cross,
        query_wan_us,
        query_cross_msgs,
        exact,
        locates,
    }
}

fn mode_rows(m: &ModeResult) -> Vec<Vec<String>> {
    m.pair_names
        .iter()
        .enumerate()
        .map(|(i, pair)| {
            vec![
                pair.clone(),
                m.plane_msgs[i].to_string(),
                m.plane_bytes[i].to_string(),
                m.flush[i].count().to_string(),
                m.flush[i].p50().to_string(),
                m.flush[i].p95().to_string(),
                m.flush[i].p99().to_string(),
                m.locate[i].count().to_string(),
                m.locate[i].p50().to_string(),
                m.locate[i].p95().to_string(),
                m.locate[i].p99().to_string(),
            ]
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let sites = scale.nodes(96);
    let objects = scale.objects(2400);
    let topo = Topology::wan3(sites);

    let flat = run_mode(&topo, objects, Placement::Flat);
    let prox = run_mode(&topo, objects, Placement::Proximity);

    let header = [
        "pair",
        "plane_msgs",
        "plane_bytes",
        "flush_msgs",
        "flush_p50_us",
        "flush_p95_us",
        "flush_p99_us",
        "locate_msgs",
        "locate_p50_us",
        "locate_p95_us",
        "locate_p99_us",
    ];
    for m in [&flat, &prox] {
        let rows = mode_rows(m);
        print_table(
            &format!("WAN sweep [{}] ({sites} sites, {objects} objects, 3 regions)", m.label),
            &header,
            &rows,
        );
        let path = results_path(&format!("wan_sweep_{}.csv", m.label));
        write_csv(&path, &header, &rows).expect("write wan_sweep csv");
        println!("\nwrote {}", path.display());

        let pairs: Vec<(String, Histogram)> = m
            .pair_names
            .iter()
            .cloned()
            .zip(m.locate.iter().cloned())
            .collect();
        print_region_pairs(&format!("Locate latency by region pair [{}]", m.label), &pairs);
    }

    let summary_header =
        ["mode", "cross_bytes", "cross_msgs", "query_wan_us", "query_cross_msgs", "locate_cross_p95_us", "flush_cross_p95_us", "locate_exact"];
    let summary_rows: Vec<Vec<String>> = [&flat, &prox]
        .iter()
        .map(|m| {
            vec![
                m.label.to_string(),
                m.cross_bytes.to_string(),
                m.cross_plane_msgs.to_string(),
                m.query_wan_us.to_string(),
                m.query_cross_msgs.to_string(),
                m.locate_cross.p95().to_string(),
                m.flush_cross.p95().to_string(),
                format!("{}/{}", m.exact, m.locates),
            ]
        })
        .collect();
    print_table("WAN federation summary", &summary_header, &summary_rows);

    // BENCH_wan.json — hand-rolled like zipf_sweep's BENCH_qcache.json.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"wan_sweep\",\n");
    json.push_str(&format!("  \"sites\": {sites},\n  \"objects\": {objects},\n"));
    json.push_str(&format!("  \"regions\": {},\n  \"seed\": {SEED},\n", topo.regions()));
    json.push_str("  \"modes\": {\n");
    for (i, m) in [&flat, &prox].iter().enumerate() {
        json.push_str(&format!("    \"{}\": {{\n", m.label));
        json.push_str(&format!("      \"cross_region_bytes\": {},\n", m.cross_bytes));
        json.push_str(&format!("      \"cross_region_msgs\": {},\n", m.cross_plane_msgs));
        json.push_str(&format!("      \"query_wan_us\": {},\n", m.query_wan_us));
        json.push_str(&format!("      \"query_cross_msgs\": {},\n", m.query_cross_msgs));
        json.push_str(&format!("      \"locate_cross_p50_us\": {},\n", m.locate_cross.p50()));
        json.push_str(&format!("      \"locate_cross_p95_us\": {},\n", m.locate_cross.p95()));
        json.push_str(&format!("      \"locate_cross_p99_us\": {},\n", m.locate_cross.p99()));
        json.push_str(&format!("      \"flush_cross_p95_us\": {},\n", m.flush_cross.p95()));
        json.push_str(&format!("      \"locate_exact\": {},\n", m.exact == m.locates));
        json.push_str(&format!("      \"locates\": {}\n", m.locates));
        json.push_str(if i == 0 { "    },\n" } else { "    }\n" });
    }
    json.push_str("  },\n");
    let byte_reduction =
        1.0 - prox.cross_bytes as f64 / flat.cross_bytes.max(1) as f64;
    let p95_reduction =
        1.0 - prox.locate_cross.p95() as f64 / flat.locate_cross.p95().max(1) as f64;
    json.push_str(&format!(
        "  \"proximity_cross_byte_reduction\": {byte_reduction:.4},\n"
    ));
    json.push_str(&format!(
        "  \"proximity_locate_cross_p95_reduction\": {p95_reduction:.4}\n"
    ));
    json.push_str("}\n");
    let json_path = results_path("BENCH_wan.json");
    std::fs::write(&json_path, &json).expect("write BENCH_wan.json");
    println!("\nwrote {}", json_path.display());

    // The headline claims, enforced so regressions are loud.
    assert_eq!(flat.exact, flat.locates, "flat mode must be oracle-exact");
    assert_eq!(prox.exact, prox.locates, "proximity mode must be oracle-exact");
    assert!(
        prox.cross_bytes < flat.cross_bytes,
        "proximity must reduce cross-region bytes ({} vs {})",
        prox.cross_bytes,
        flat.cross_bytes
    );
    assert!(
        prox.locate_cross.p95() < flat.locate_cross.p95(),
        "proximity must reduce cross-region locate p95 ({} vs {})",
        prox.locate_cross.p95(),
        flat.locate_cross.p95()
    );
}
