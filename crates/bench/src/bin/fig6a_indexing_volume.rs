//! E1 — Fig. 6a: scalability of indexing on data volume (dynamic
//! network). Prints the two series and writes `results/fig6a.csv`.

use bench::report::{print_table, write_csv};
use bench::{fig6, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = fig6::fig6a(scale);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.series.clone(),
                p.objects_per_node.to_string(),
                p.nn.to_string(),
                p.lp.to_string(),
                p.messages.to_string(),
                p.bytes.to_string(),
            ]
        })
        .collect();
    let header = ["series", "objects_per_node", "nn", "lp", "messages", "bytes"];
    write_csv(
        bench::report::results_path("fig6a.csv"), &header, &rows).expect("write results/fig6a.csv");
    print_table(
        &format!("Fig. 6a — indexing cost vs data volume ({scale:?})"),
        &header,
        &rows,
    );
    println!("\nwrote results/fig6a.csv");
}
