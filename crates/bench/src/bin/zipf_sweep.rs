//! Skewed query workloads against the locate-answer cache (DESIGN.md
//! §15): Zipf-popular locates at s ∈ {0, 0.8, 1.2} plus a flash-crowd
//! spike, each run cache-off and cache-on at the same seed.
//!
//! Measured per cell:
//!
//! * modeled locate latency (p50/p99 of `QueryStats::time`) and the
//!   mean message cost,
//! * hot-shard pressure: the per-node served-locate distribution's
//!   imbalance row (max / mean / p99 / max-over-mean), shared with
//!   `fault_sweep`,
//! * cache counters (hits / misses / insertions / evictions).
//!
//! Every answer — both modes, every query — is asserted against the
//! ground-truth movement oracle, so the cache can only change *cost*,
//! never answers. Writes `results/zipf_sweep_off.csv`,
//! `results/zipf_sweep_on.csv` and `results/BENCH_qcache.json`; all
//! three are deterministic at a given scale and the committed copies
//! are regenerated (and byte-compared) by `scripts/verify.sh`.
//! `PEERTRACK_SCALE=full` for the larger configuration.

use bench::report::{imbalance_row, print_table, results_path, write_csv, IMBALANCE_HEADER};
use bench::Scale;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use moods::{MovementLog, ObjectId, SiteId};
use peertrack::Builder;
use qcache::{imbalance, percentile, CacheStats};
use simnet::time::ms;
use simnet::SimTime;
use std::fmt::Write as _;
use workload::streams::{flash_crowd_locates, zipf_locates, LocateEvent};

const SEED: u64 = 0x21FF_CAFE;

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    /// Zipf(s)-popular targets over the whole population.
    Zipf(f64),
    /// Uniform background with a 90%-hot spike on a 4-object hot set
    /// over the middle 80% of the stream.
    Flash,
}

impl Scenario {
    fn label(&self) -> String {
        match self {
            Scenario::Zipf(s) => format!("zipf_{s:.1}"),
            Scenario::Flash => "flash_crowd".to_string(),
        }
    }

    fn s_column(&self) -> String {
        match self {
            Scenario::Zipf(s) => format!("{s:.1}"),
            Scenario::Flash => "-".to_string(),
        }
    }
}

struct Cell {
    scenario: Scenario,
    cached: bool,
    queries: usize,
    p50_us: u64,
    p99_us: u64,
    avg_msgs: f64,
    query_load: Vec<u64>,
    cache: CacheStats,
}

/// Identical capture/movement phase for every cell: each object is
/// captured once, a third move on once more — enough history that a
/// locate can need a backward walk, little enough that most queries ask
/// about the current holder (the cacheable case).
fn run_cell(
    sites: usize,
    objects: usize,
    queries: usize,
    cache_capacity: usize,
    scenario: Scenario,
    cached: bool,
) -> Cell {
    let mut b = Builder::new().sites(sites).seed(SEED).mode(bench::experiment_group_mode());
    if cached {
        b = b.locate_cache(cache_capacity);
    }
    let mut net = b.build();

    let mut oracle = MovementLog::new();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut clock = SimTime::ZERO;
    let mut population: Vec<ObjectId> = Vec::with_capacity(objects);
    for n in 0..objects {
        let o = ObjectId::from_raw(format!("zipf-{n}").as_bytes());
        let site = SiteId(rng.gen_range(0..sites as u32));
        clock = clock + ms(25);
        net.schedule_capture(clock, site, vec![o]);
        oracle.record(o, site, clock);
        population.push(o);
    }
    clock = clock + ms(2_000);
    for (n, &o) in population.iter().enumerate() {
        if n % 3 != 0 {
            continue;
        }
        let here = oracle.visits(o).last().expect("captured above").site;
        let mut site = SiteId(rng.gen_range(0..sites as u32));
        if site == here {
            site = SiteId((site.0 + 1) % sites as u32);
        }
        clock = clock + ms(25);
        net.schedule_capture(clock, site, vec![o]);
        oracle.record(o, site, clock);
    }
    net.run_until_quiescent();

    // The locate stream starts well past the last capture window, so
    // every query asks about the present.
    let start = net.now() + ms(1_000);
    let gap = ms(10);
    let events: Vec<LocateEvent> = match scenario {
        Scenario::Zipf(s) => zipf_locates(&population, s, queries, start, gap, SEED ^ 0x51),
        Scenario::Flash => {
            let span = gap.as_micros() * queries as u64;
            let from = start + SimTime::from_micros(span / 10);
            let until = start + SimTime::from_micros(span * 9 / 10);
            flash_crowd_locates(
                &population,
                &population[..4.min(population.len())],
                0.9,
                from,
                until,
                queries,
                start,
                gap,
                SEED ^ 0x51,
            )
        }
    };

    let mut times_us: Vec<u64> = Vec::with_capacity(events.len());
    let mut msgs = 0u64;
    for (k, ev) in events.iter().enumerate() {
        let origin = SiteId((k % sites) as u32);
        let truth = oracle.visits(ev.object).last().expect("in population").site;
        let (ans, stats) = net.locate(origin, ev.object, ev.at);
        assert_eq!(
            ans,
            Some(truth),
            "locate must stay oracle-exact (cache {}, scenario {})",
            if cached { "on" } else { "off" },
            scenario.label(),
        );
        times_us.push(stats.time.as_micros());
        msgs += stats.messages;
    }

    Cell {
        scenario,
        cached,
        queries,
        p50_us: percentile(&times_us, 0.50),
        p99_us: percentile(&times_us, 0.99),
        avg_msgs: msgs as f64 / events.len() as f64,
        query_load: net.query_load(),
        cache: net.cache_stats(),
    }
}

fn row(c: &Cell) -> Vec<String> {
    let mut r = vec![
        c.scenario.label(),
        c.scenario.s_column(),
        c.queries.to_string(),
        c.p50_us.to_string(),
        c.p99_us.to_string(),
        format!("{:.3}", c.avg_msgs),
    ];
    r.extend(imbalance_row(&c.query_load));
    r.extend([
        c.cache.hits.to_string(),
        c.cache.misses.to_string(),
        c.cache.insertions.to_string(),
        c.cache.evictions.to_string(),
    ]);
    r
}

fn json_side(out: &mut String, c: &Cell) {
    let im = imbalance(&c.query_load);
    let _ = write!(
        out,
        "{{\"p50_us\":{},\"p99_us\":{},\"avg_msgs\":{:.3},\"max_load\":{},\"max_over_mean\":{:.3},\"hits\":{},\"misses\":{}}}",
        c.p50_us, c.p99_us, c.avg_msgs, im.max, im.ratio, c.cache.hits, c.cache.misses
    );
}

fn main() {
    let scale = Scale::from_env();
    let sites = scale.nodes(64);
    let objects = scale.objects(2_000);
    let queries = scale.objects(12_000);
    let capacity = (objects / 8).max(16);

    let scenarios =
        [Scenario::Zipf(0.0), Scenario::Zipf(0.8), Scenario::Zipf(1.2), Scenario::Flash];
    let inputs: Vec<(Scenario, bool)> =
        scenarios.iter().flat_map(|&sc| [(sc, false), (sc, true)]).collect();
    let cells = bench::parallel_sweep(inputs, |&(sc, cached)| {
        run_cell(sites, objects, queries, capacity, sc, cached)
    });

    let mut header = vec!["scenario", "s", "queries", "p50_us", "p99_us", "avg_msgs"];
    header.extend(IMBALANCE_HEADER);
    header.extend(["cache_hits", "cache_misses", "cache_insertions", "cache_evictions"]);

    let off_rows: Vec<Vec<String>> =
        cells.iter().filter(|c| !c.cached).map(row).collect();
    let on_rows: Vec<Vec<String>> = cells.iter().filter(|c| c.cached).map(row).collect();
    print_table(
        &format!("Zipf/flash-crowd sweep, cache OFF ({sites} sites, {objects} objects)"),
        &header,
        &off_rows,
    );
    print_table(
        &format!("Zipf/flash-crowd sweep, cache ON (capacity {capacity}/node)"),
        &header,
        &on_rows,
    );
    let off_path = results_path("zipf_sweep_off.csv");
    let on_path = results_path("zipf_sweep_on.csv");
    write_csv(&off_path, &header, &off_rows).expect("write zipf_sweep_off.csv");
    write_csv(&on_path, &header, &on_rows).expect("write zipf_sweep_on.csv");

    // The headline artifact: per scenario, cache-off vs cache-on side
    // by side with the reduction ratios. Hand-rolled JSON (hermetic
    // policy), deterministic at a given scale.
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"zipf_sweep\",\n");
    let _ = write!(
        json,
        "  \"config\": {{\"sites\":{sites},\"objects\":{objects},\"queries\":{queries},\"cache_capacity\":{capacity},\"seed\":{SEED}}},\n"
    );
    json.push_str("  \"locate_accuracy_exact_both_modes\": true,\n");
    json.push_str("  \"scenarios\": [\n");
    for (i, pair) in cells.chunks(2).enumerate() {
        let (off, on) = (&pair[0], &pair[1]);
        assert!(!off.cached && on.cached, "cells alternate off/on per scenario");
        let (roff, ron) = (imbalance(&off.query_load).ratio, imbalance(&on.query_load).ratio);
        let _ = write!(json, "    {{\"scenario\":\"{}\",\"off\":", off.scenario.label());
        json_side(&mut json, off);
        json.push_str(",\"on\":");
        json_side(&mut json, on);
        let _ = write!(
            json,
            ",\"p99_latency_reduction\":{:.3},\"imbalance_reduction\":{:.3}}}",
            1.0 - on.p99_us as f64 / off.p99_us.max(1) as f64,
            1.0 - ron / roff.max(1e-9),
        );
        json.push_str(if i + 1 < cells.len() / 2 { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    let json_path = results_path("BENCH_qcache.json");
    std::fs::write(&json_path, &json).expect("write BENCH_qcache.json");

    // The headline claims, enforced so regeneration catches regressions:
    // under heavy skew the cache must cut both the latency tail and the
    // hot-shard concentration, and under a uniform workload it must not
    // make either materially worse.
    for pair in cells.chunks(2) {
        let (off, on) = (&pair[0], &pair[1]);
        let (roff, ron) = (imbalance(&off.query_load).ratio, imbalance(&on.query_load).ratio);
        match off.scenario {
            Scenario::Flash => {
                // The acceptance cell: a ~90% hit rate must collapse
                // both the latency tail and the hot-shard ratio.
                assert!(
                    on.p99_us < off.p99_us,
                    "flash_crowd: cache must cut p99 latency ({} vs {})",
                    on.p99_us,
                    off.p99_us
                );
                assert!(
                    ron < roff,
                    "flash_crowd: cache must cut max/mean imbalance ({ron:.3} vs {roff:.3})"
                );
                assert!(on.avg_msgs < off.avg_msgs, "flash_crowd: cache must cut message cost");
            }
            Scenario::Zipf(s) if s >= 1.0 => {
                // Heavy skew: the hot shard must cool and the mean cost
                // must drop. (p99 may sit on a flat tail of cold-object
                // discoveries, so it is reported but not asserted here.)
                assert!(
                    ron < roff,
                    "zipf s={s}: cache must cut max/mean imbalance ({ron:.3} vs {roff:.3})"
                );
                assert!(on.avg_msgs < off.avg_msgs, "zipf s={s}: cache must cut message cost");
            }
            _ => {
                assert!(
                    on.avg_msgs <= off.avg_msgs + 0.05,
                    "{}: cache must not inflate message cost",
                    off.scenario.label()
                );
            }
        }
    }

    println!("\nwrote {}", off_path.display());
    println!("wrote {}", on_path.display());
    println!("wrote {}", json_path.display());
}
