//! Fault sweep: tracking quality and reliability cost as a function of
//! link loss, with the retry layer off vs on.
//!
//! For each drop rate the same capture/movement workload runs twice —
//! retries disabled (the paper's implicit reliable-network assumption)
//! and enabled (at-least-once delivery with acks and exponential
//! backoff). Reported per cell:
//!
//! * delivery rate the fault plane actually achieved,
//! * locate accuracy against the ground-truth oracle and the fraction
//!   of answers the system itself flagged complete,
//! * retransmission/ack overhead (`MsgClass::Retrans` / `Ack`) relative
//!   to the whole message budget,
//! * the protocol's own anomaly counters (exhausted retries, failed
//!   refresh fetches).
//!
//! Writes `results/fault_sweep.csv`. `PEERTRACK_SCALE=full` for the
//! larger configuration.

use bench::report::{
    fault_stats_row, imbalance_row, print_region_pairs, print_table, results_path, write_csv,
    FAULT_STATS_HEADER, IMBALANCE_HEADER,
};
use bench::Scale;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use moods::{MovementLog, ObjectId, SiteId};
use peertrack::config::RetryConfig;
use peertrack::{Builder, GroupConfig, IndexingMode, TraceableNetwork};
use simnet::fault::FaultConfig;
use simnet::time::ms;
use simnet::{MsgClass, SimTime};

const SEED: u64 = 0x5EED_FA17;

struct Cell {
    drop: f64,
    retries: bool,
    delivery: f64,
    fault_stats: simnet::FaultStats,
    locate_ok: f64,
    flagged_complete: f64,
    retrans: u64,
    acks: u64,
    overhead: f64,
    exhausted: u64,
    refresh_failures: u64,
    query_load: Vec<u64>,
    locate_latency: obs::Histogram,
}

fn build(sites: usize, drop: f64, retries: bool) -> TraceableNetwork {
    let retry = if retries {
        RetryConfig { enabled: true, timeout: ms(150), backoff: 2, max_attempts: 6 }
    } else {
        RetryConfig::disabled()
    };
    Builder::new()
        .sites(sites)
        .seed(SEED)
        .mode(IndexingMode::Group(GroupConfig {
            t_max: ms(200),
            n_max: 64,
            ..GroupConfig::default()
        }))
        .faults(FaultConfig::uniform_drop(SEED ^ 0xD0D0, drop))
        .retry(retry)
        .build()
}

/// The workload: every object is captured once, a third of them move
/// one to three more times. Identical schedule for every cell.
fn run_cell(sites: usize, objects: usize, drop: f64, retries: bool) -> Cell {
    let mut net = build(sites, drop, retries);
    let mut oracle = MovementLog::new();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut clock = SimTime::ZERO;
    let mut all: Vec<ObjectId> = Vec::with_capacity(objects);

    let mut moves: Vec<u32> = Vec::with_capacity(objects);
    for n in 0..objects {
        let o = ObjectId::from_raw(format!("sweep-{n}").as_bytes());
        let site = SiteId(rng.gen_range(0..sites as u32));
        clock = clock + ms(25);
        net.schedule_capture(clock, site, vec![o]);
        oracle.record(o, site, clock);
        all.push(o);
        // A third of the objects move on, one to three times.
        moves.push(if rng.gen_range(0..3u32) == 0 { rng.gen_range(1..=3u32) } else { 0 });
    }
    // Movement rounds, each well past the previous round's windows: the
    // sweep measures the effect of *loss*, so successive updates for
    // one object must not race each other's capture windows (that
    // reordering exists at zero loss and is studied by the schedule
    // auditor instead).
    for round in 0..3u32 {
        clock = clock + ms(2_000);
        for (i, &o) in all.iter().enumerate() {
            if moves[i] <= round {
                continue;
            }
            let here = oracle.visits(o).last().map(|v| v.site);
            let mut site = SiteId(rng.gen_range(0..sites as u32));
            if here == Some(site) {
                site = SiteId((site.0 + 1) % sites as u32);
            }
            clock = clock + ms(25);
            net.schedule_capture(clock, site, vec![o]);
            oracle.record(o, site, clock);
        }
    }
    net.run_until_quiescent();

    let origin = SiteId(0);
    let (mut ok, mut complete) = (0usize, 0usize);
    let mut locate_latency = obs::Histogram::new();
    for &o in &all {
        let truth = oracle.visits(o).last().expect("every object was captured").site;
        let (loc, stats) = net.locate(origin, o, net.now());
        if loc == Some(truth) {
            ok += 1;
        }
        if stats.complete {
            complete += 1;
        }
        locate_latency.record(stats.time.as_micros());
    }

    let m = net.metrics();
    let retrans = m.messages_of(MsgClass::Retrans);
    let acks = m.messages_of(MsgClass::Ack);
    let total_bytes: u64 = simnet::metrics::ALL_CLASSES.iter().map(|&c| m.bytes_of(c)).sum();
    let overhead_bytes = m.bytes_of(MsgClass::Retrans) + m.bytes_of(MsgClass::Ack);
    let anomalies = net.anomalies();
    let fault_stats = net.fault_stats().expect("fault plane configured");
    Cell {
        drop,
        retries,
        delivery: fault_stats.delivery_rate(),
        fault_stats,
        locate_ok: ok as f64 / all.len() as f64,
        flagged_complete: complete as f64 / all.len() as f64,
        retrans,
        acks,
        overhead: if total_bytes == 0 { 0.0 } else { overhead_bytes as f64 / total_bytes as f64 },
        exhausted: anomalies.retries_exhausted,
        refresh_failures: anomalies.refresh_failures,
        query_load: net.query_load(),
        locate_latency,
    }
}

fn main() {
    let scale = Scale::from_env();
    let sites = scale.nodes(32);
    let objects = scale.objects(1200);
    let drops = [0.0, 0.02, 0.05, 0.10, 0.20];

    let inputs: Vec<(f64, bool)> = drops
        .iter()
        .flat_map(|&d| [(d, false), (d, true)])
        .collect();
    let cells = bench::parallel_sweep(inputs, |&(drop, retries)| {
        run_cell(sites, objects, drop, retries)
    });

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{:.2}", c.drop),
                (if c.retries { "on" } else { "off" }).to_string(),
                format!("{:.4}", c.delivery),
                format!("{:.4}", c.locate_ok),
                format!("{:.4}", c.flagged_complete),
                c.retrans.to_string(),
                c.acks.to_string(),
                format!("{:.4}", c.overhead),
                c.exhausted.to_string(),
                c.refresh_failures.to_string(),
            ]
        })
        .collect();
    let header = [
        "drop",
        "retries",
        "delivery_rate",
        "locate_accuracy",
        "flagged_complete",
        "retrans_msgs",
        "ack_msgs",
        "reliability_byte_overhead",
        "retries_exhausted",
        "refresh_failures",
    ];
    print_table(
        &format!("Fault sweep ({sites} sites, {objects} objects)"),
        &header,
        &rows,
    );
    let path = results_path("fault_sweep.csv");
    write_csv(&path, &header, &rows).expect("write fault_sweep.csv");
    println!("\nwrote {}", path.display());

    // Raw fault-plane counters per cell, through the shared reporting
    // path (`bench::report::fault_stats_row`) — the same formatting any
    // figure binary run with faults would print.
    let mut fs_header = vec!["drop", "retries"];
    fs_header.extend(FAULT_STATS_HEADER);
    let fs_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let mut row = vec![
                format!("{:.2}", c.drop),
                (if c.retries { "on" } else { "off" }).to_string(),
            ];
            row.extend(fault_stats_row(&c.fault_stats));
            row
        })
        .collect();
    print_table("Fault-plane counters", &fs_header, &fs_rows);
    let fs_path = results_path("fault_stats.csv");
    write_csv(&fs_path, &fs_header, &fs_rows).expect("write fault_stats.csv");
    println!("\nwrote {}", fs_path.display());

    // Hot-shard view of the verification locates (console only — the
    // CSVs above are byte-stable regression artifacts): which sites
    // served them, through the shared imbalance row `zipf_sweep` also
    // uses.
    let mut im_header = vec!["drop", "retries"];
    im_header.extend(IMBALANCE_HEADER);
    let im_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let mut row = vec![
                format!("{:.2}", c.drop),
                (if c.retries { "on" } else { "off" }).to_string(),
            ];
            row.extend(imbalance_row(&c.query_load));
            row
        })
        .collect();
    print_table("Served-locate load imbalance", &im_header, &im_rows);

    // Verification-locate latency through the shared region-pair row
    // (console only): this sweep has no geo topology, so every cell is
    // the degenerate single `all->all` pair — the same formatting
    // `wan_sweep` uses for real region pairs.
    let lat_pairs: Vec<(String, obs::Histogram)> = cells
        .iter()
        .map(|c| {
            let label =
                format!("all->all d={:.2} r={}", c.drop, if c.retries { "on" } else { "off" });
            (label, c.locate_latency.clone())
        })
        .collect();
    print_region_pairs("Verification-locate latency", &lat_pairs);

    // The headline claims, enforced so `all_experiments`-style runs
    // catch regressions: retries recover locate accuracy at 10% loss,
    // and a clean link stays exactly clean.
    for c in &cells {
        if c.drop == 0.0 {
            assert_eq!(c.retrans, 0, "no loss, no retransmissions");
            assert!(c.locate_ok == 1.0, "lossless run must locate everything");
        }
        if c.retries && c.drop <= 0.10 {
            assert!(
                c.locate_ok > 0.99,
                "retries must recover accuracy at {}% drop (got {:.4})",
                c.drop * 100.0,
                c.locate_ok
            );
        }
    }
}
