//! Open-loop load generator for the daemon's event-loop core.
//!
//! Drives an N-node loopback cluster with capture traffic at a target
//! arrival rate and reports sustained captures/sec and locates/sec with
//! p50/p95/p99 ack latencies from the shared `obs` histograms. Two
//! client disciplines, selectable with `--mode`:
//!
//! * **serial** — closed-loop request-at-a-time: each client writes one
//!   `Capture`, blocks for its `Ack`, then sends the next. This is the
//!   discipline the pre-event-loop daemon forced on every client (one
//!   outstanding request per connection), so it doubles as the
//!   before/after baseline: every request pays a full engine wakeup and
//!   its own fsync batch-of-one.
//! * **pipelined** — open-loop: each client paces `Capture` frames at
//!   the target rate *without waiting for acks* (a reader thread drains
//!   responses concurrently, matching them FIFO to send stamps — valid
//!   because the engine guarantees per-connection response order). The
//!   engine drains many requests per poll wakeup and amortizes one
//!   fsync across the whole batch; the throughput ratio over `serial`
//!   is the group-commit win.
//!
//! After the capture phase each node's open window is flushed and the
//! cluster quiesced, then a closed-loop locate phase queries each
//! site's objects from a *different* site, exercising the distributed
//! query path (nested-pump RPCs) under the same engine.
//!
//! The run's trajectory is committed as `results/BENCH_daemon.json`
//! (override with `--json`); `scripts/bench_daemon.sh` is the
//! repeatable invocation. With `--min-captures-per-sec F` the binary
//! exits nonzero when the pipelined rate lands under the floor — the
//! verify.sh smoke gate. Without loopback sockets it skips loudly and
//! exits 0.
//!
//! ```text
//! cargo run --release -p bench --bin daemon_load -- --mode both
//! ```

use bench::report::{print_imbalance, print_table, results_path};
use daemon::{Frame, LoopbackCluster};
use detrand::zipf::Zipf;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use durable::FsyncMode;
use obs::Histogram;
use peertrack::config::GroupConfig;
use simnet::time::secs;
use std::io::{self, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};
use transport::frame::{read_frame, write_frame};
use workload::epc_object;

#[derive(Clone, Copy, PartialEq, Eq)]
enum RunMode {
    Serial,
    Pipelined,
    Both,
}

#[derive(Clone)]
struct Opts {
    sites: usize,
    seed: u64,
    fsync: FsyncMode,
    /// Target total capture-frame arrival rate (frames/sec, all sites).
    rate: f64,
    /// Capture-phase duration per mode (seconds).
    duration: f64,
    objects_per_frame: u64,
    locates_per_site: u64,
    /// Window count-flush threshold (`GroupConfig::n_max`): how many
    /// buffered objects trigger an indexing flush mid-ingest. Larger
    /// values keep the protocol plane quiet during the capture phase so
    /// the measurement isolates the WAL/ack path.
    n_max: usize,
    mode: RunMode,
    json: PathBuf,
    min_captures_per_sec: Option<f64>,
    /// Zipf exponent for the locate phase's object choice: each query
    /// samples a 0-based popularity rank instead of round-robining, so
    /// a few hot objects draw most of the traffic (DESIGN.md §15).
    zipf: Option<f64>,
    /// Flash-crowd overlay: with this probability a locate targets the
    /// hot prefix (the first ~1% of the target site's objects) instead
    /// of the base (round-robin or Zipf) choice.
    hot_prefix: Option<f64>,
    /// Per-node locate-answer cache capacity (volatile, engine-side).
    locate_cache: Option<usize>,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            sites: 8,
            seed: 42,
            fsync: FsyncMode::Batch,
            // Well above the engine's single-core saturation point, so
            // the open-loop writers keep the pipeline full and the
            // measured rate is the sustained ceiling, not the pacing.
            rate: 250_000.0,
            duration: 2.0,
            objects_per_frame: 1,
            locates_per_site: 100,
            n_max: GroupConfig::default().n_max,
            mode: RunMode::Both,
            json: results_path("BENCH_daemon.json"),
            min_captures_per_sec: None,
            zipf: None,
            hot_prefix: None,
            locate_cache: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: daemon_load [--sites N] [--seed S] [--fsync always|batch|never]\n\
         \x20                 [--rate FRAMES_PER_SEC] [--secs DURATION]\n\
         \x20                 [--objects-per-frame K] [--locates-per-site L] [--nmax N]\n\
         \x20                 [--mode serial|pipelined|both] [--json PATH]\n\
         \x20                 [--min-captures-per-sec FLOOR]\n\
         \x20                 [--zipf S] [--hot-prefix FRAC] [--locate-cache N]\n\
         \n\
         --zipf S         locate targets follow a Zipf(S) popularity rank\n\
         --hot-prefix F   with probability F a locate hits the hot prefix\n\
         \x20                (first ~1% of the target's objects)\n\
         --locate-cache N each node caches up to N locate answers"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--sites" => o.sites = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            "--fsync" => {
                o.fsync = match val().as_str() {
                    "always" => FsyncMode::Always,
                    "batch" => FsyncMode::Batch,
                    "never" => FsyncMode::Never,
                    _ => usage(),
                }
            }
            "--rate" => o.rate = val().parse().unwrap_or_else(|_| usage()),
            "--secs" => o.duration = val().parse().unwrap_or_else(|_| usage()),
            "--objects-per-frame" => {
                o.objects_per_frame = val().parse().unwrap_or_else(|_| usage())
            }
            "--locates-per-site" => {
                o.locates_per_site = val().parse().unwrap_or_else(|_| usage())
            }
            "--nmax" => o.n_max = val().parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                o.mode = match val().as_str() {
                    "serial" => RunMode::Serial,
                    "pipelined" => RunMode::Pipelined,
                    "both" => RunMode::Both,
                    _ => usage(),
                }
            }
            "--json" => o.json = PathBuf::from(val()),
            "--min-captures-per-sec" => {
                o.min_captures_per_sec = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--zipf" => o.zipf = Some(val().parse().unwrap_or_else(|_| usage())),
            "--hot-prefix" => o.hot_prefix = Some(val().parse().unwrap_or_else(|_| usage())),
            "--locate-cache" => o.locate_cache = Some(val().parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
    }
    if o.sites == 0 || o.objects_per_frame == 0 || o.rate <= 0.0 || o.duration <= 0.0 {
        usage();
    }
    if o.zipf.is_some_and(|s| s < 0.0 || !s.is_finite())
        || o.hot_prefix.is_some_and(|f| !(0.0..=1.0).contains(&f))
        || o.locate_cache == Some(0)
    {
        usage();
    }
    o
}

/// One mode's measured trajectory.
struct ModeResult {
    captures: u64,
    capture_wall: f64,
    ack: Histogram,
    locates: u64,
    locate_hits: u64,
    locate_wall: f64,
    locate_lat: Histogram,
    backpressure_parks: u64,
    /// Locates served per site, merged across every node's per-origin
    /// attribution slice (`Frame::QueryLoad`) — the hot-shard view.
    served: Vec<u64>,
    cache_hits: u64,
    cache_misses: u64,
}

impl ModeResult {
    fn captures_per_sec(&self) -> f64 {
        self.captures as f64 / self.capture_wall.max(1e-9)
    }

    fn locates_per_sec(&self) -> f64 {
        self.locates as f64 / self.locate_wall.max(1e-9)
    }
}

fn expect_frame(stream: &mut TcpStream) -> io::Result<Frame> {
    match read_frame(stream)? {
        Some(raw) => Frame::decode(&raw)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        None => Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "node closed mid-bench",
        )),
    }
}

/// Capture frame `k` of `site`: `objects_per_frame` fresh objects at a
/// strictly increasing virtual instant (1 ms apart, like a reader that
/// scans a new pallet every millisecond).
fn capture_frame(site: u32, k: u64, opf: u64) -> Frame {
    Frame::Capture {
        at: simnet::SimTime::from_micros(k * 1_000),
        objects: (0..opf).map(|j| epc_object(site, k * opf + j)).collect(),
    }
}

/// Closed-loop capture client: one outstanding request, ever.
fn serial_capture_client(
    addr: std::net::SocketAddr,
    site: u32,
    duration: f64,
    opf: u64,
) -> io::Result<(u64, Histogram)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut hist = Histogram::new();
    let mut sent = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < duration {
        let payload = capture_frame(site, sent, opf).encode();
        let t0 = Instant::now();
        write_frame(&mut stream, &payload)?;
        expect_frame(&mut stream)?;
        hist.record(t0.elapsed().as_micros() as u64);
        sent += 1;
    }
    Ok((sent, hist))
}

/// Open-loop capture client: a writer paces frames at `rate` without
/// waiting; a reader drains acks concurrently, pairing them FIFO with
/// send stamps (sound because the engine preserves per-connection
/// response order — the pipelining invariant this bench leans on).
fn pipelined_capture_client(
    addr: std::net::SocketAddr,
    site: u32,
    rate: f64,
    duration: f64,
    opf: u64,
) -> io::Result<(u64, Histogram)> {
    let mut wstream = TcpStream::connect(addr)?;
    wstream.set_nodelay(true)?;
    let mut rstream = wstream.try_clone()?;
    let (tx, rx) = mpsc::channel::<Instant>();

    let reader = thread::spawn(move || -> io::Result<Histogram> {
        let mut hist = Histogram::new();
        while let Ok(stamp) = rx.recv() {
            expect_frame(&mut rstream)?;
            hist.record(stamp.elapsed().as_micros() as u64);
        }
        Ok(hist)
    });

    let mut sent = 0u64;
    let start = Instant::now();
    while start.elapsed().as_secs_f64() < duration {
        // Open-loop pacing: frame k is due at start + k/rate. A stall
        // (engine backpressure propagating through TCP) makes later
        // frames late, never skipped — arrivals stay open-loop.
        let due = start + Duration::from_secs_f64(sent as f64 / rate);
        let now = Instant::now();
        if due > now {
            thread::sleep(due - now);
        }
        let payload = capture_frame(site, sent, opf).encode();
        tx.send(Instant::now()).expect("reader outlives writer");
        write_frame(&mut wstream, &payload)?;
        sent += 1;
    }
    drop(tx);
    let hist = reader.join().expect("reader thread panicked")?;
    Ok((sent, hist))
}

/// How the locate phase picks objects: round-robin by default, a
/// Zipf(s) popularity rank with `--zipf`, and a flash-crowd overlay
/// with `--hot-prefix` (probability of hitting the hot prefix, the
/// first ~1% of the target's objects).
#[derive(Clone, Copy)]
struct Skew {
    zipf: Option<f64>,
    hot_prefix: Option<f64>,
    seed: u64,
}

/// Closed-loop locate client at `origin`, querying objects captured at
/// `target` — every query crosses the cluster (nested-pump RPC path).
fn locate_client(
    addr: std::net::SocketAddr,
    target: u32,
    target_objects: u64,
    count: u64,
    skew: Skew,
) -> io::Result<(u64, u64, Histogram)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut hist = Histogram::new();
    let mut hits = 0u64;
    let sampler = skew.zipf.map(|s| Zipf::new(target_objects as usize, s));
    let mut rng = StdRng::seed_from_u64(skew.seed);
    let hot_len = (target_objects / 100).max(1);
    for k in 0..count {
        let idx = if skew.hot_prefix.is_some_and(|f| rng.gen_bool(f)) {
            rng.gen_range(0..hot_len)
        } else if let Some(z) = &sampler {
            z.sample(&mut rng) as u64
        } else {
            k % target_objects
        };
        let object = epc_object(target, idx);
        let payload = Frame::Locate { object, t: secs(7_200) }.encode();
        let t0 = Instant::now();
        write_frame(&mut stream, &payload)?;
        let reply = expect_frame(&mut stream)?;
        hist.record(t0.elapsed().as_micros() as u64);
        if let Frame::LocateResp { answer: Some(s), .. } = reply {
            if s.0 == target {
                hits += 1;
            }
        }
    }
    Ok((count, hits, hist))
}

fn run_mode(pipelined: bool, o: &Opts) -> io::Result<ModeResult> {
    let tag = if pipelined { "pipelined" } else { "serial" };
    let root = std::env::temp_dir()
        .join(format!("daemon-load-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let group = GroupConfig { n_max: o.n_max, ..GroupConfig::default() };
    // Snapshots off the hot path: this bench measures the WAL
    // group-commit plane, not compaction cadence.
    let snapshot_every = 1_000_000;
    let mut cluster = match o.locate_cache {
        Some(cap) => LoopbackCluster::start_durable_cached(
            o.sites, o.seed, group, &root, o.fsync, snapshot_every, cap,
        )?,
        None => LoopbackCluster::start_durable(
            o.sites, o.seed, group, &root, o.fsync, snapshot_every,
        )?,
    };

    // -- capture phase ------------------------------------------------
    let per_site_rate = o.rate / o.sites as f64;
    let phase_start = Instant::now();
    let handles: Vec<_> = (0..o.sites)
        .map(|i| {
            let addr = cluster.addr(i);
            let (dur, opf) = (o.duration, o.objects_per_frame);
            thread::spawn(move || {
                if pipelined {
                    pipelined_capture_client(addr, i as u32, per_site_rate, dur, opf)
                } else {
                    serial_capture_client(addr, i as u32, dur, opf)
                }
            })
        })
        .collect();
    let mut sent_per_site = Vec::with_capacity(o.sites);
    let mut ack = Histogram::new();
    for h in handles {
        let (sent, hist) = h.join().expect("capture client panicked")?;
        sent_per_site.push(sent);
        ack.merge(&hist);
    }
    let capture_wall = phase_start.elapsed().as_secs_f64();
    let captures: u64 = sent_per_site.iter().sum();

    // -- settle: flush open windows, drain protocol traffic -----------
    for i in 0..o.sites {
        let mut s = TcpStream::connect(cluster.addr(i))?;
        s.set_nodelay(true)?;
        write_frame(&mut s, &Frame::Flush { now: secs(3_600) }.encode())?;
        expect_frame(&mut s)?;
    }
    cluster.quiesce()?;

    // -- locate phase -------------------------------------------------
    let phase_start = Instant::now();
    let handles: Vec<_> = (0..o.sites)
        .map(|i| {
            let addr = cluster.addr(i);
            let target = (i + 1) % o.sites;
            let target_objects = sent_per_site[target] * o.objects_per_frame;
            let count = o.locates_per_site;
            let skew = Skew {
                zipf: o.zipf,
                hot_prefix: o.hot_prefix,
                seed: o.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            thread::spawn(move || {
                if target_objects == 0 {
                    return Ok((0, 0, Histogram::new()));
                }
                locate_client(addr, target as u32, target_objects, count, skew)
            })
        })
        .collect();
    let mut locates = 0u64;
    let mut locate_hits = 0u64;
    let mut locate_lat = Histogram::new();
    for h in handles {
        let (n, hits, hist) = h.join().expect("locate client panicked")?;
        locates += n;
        locate_hits += hits;
        locate_lat.merge(&hist);
    }
    let locate_wall = phase_start.elapsed().as_secs_f64();

    // Per-node served-locate attribution: each node reports who answered
    // the locates *it* originated; the merged slices are the cluster-wide
    // hot-shard tally (plus each node's cache counters).
    let mut served = vec![0u64; o.sites];
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    for i in 0..o.sites {
        let (loads, h, m) = cluster.query_load(i)?;
        for (site, n) in loads {
            if let Some(slot) = served.get_mut(site.0 as usize) {
                *slot += n;
            }
        }
        cache_hits += h;
        cache_misses += m;
    }

    let reports = cluster.shutdown()?;
    let backpressure_parks = reports.iter().map(|r| r.backpressure_parks).sum();
    std::fs::remove_dir_all(&root).ok();

    Ok(ModeResult {
        captures,
        capture_wall,
        ack,
        locates,
        locate_hits,
        locate_wall,
        locate_lat,
        backpressure_parks,
        served,
        cache_hits,
        cache_misses,
    })
}

fn hist_json(h: &Histogram) -> String {
    if h.is_empty() {
        return r#"{"count":0}"#.to_string();
    }
    format!(
        r#"{{"count":{},"p50":{},"p95":{},"p99":{},"mean":{:.1},"max":{}}}"#,
        h.count(),
        h.p50(),
        h.p95(),
        h.p99(),
        h.mean(),
        h.max()
    )
}

fn mode_json(r: &ModeResult, objects_per_frame: u64) -> String {
    let served: Vec<String> = r.served.iter().map(|n| n.to_string()).collect();
    let im = qcache::imbalance(&r.served);
    format!(
        r#"{{"captures":{},"capture_wall_secs":{:.3},"captures_per_sec":{:.1},"objects_per_sec":{:.1},"ack_latency_us":{},"locates":{},"locate_hits":{},"locates_per_sec":{:.1},"locate_latency_us":{},"backpressure_parks":{},"served_locates_per_site":[{}],"served_max_over_mean":{:.3},"cache_hits":{},"cache_misses":{}}}"#,
        r.captures,
        r.capture_wall,
        r.captures_per_sec(),
        r.captures_per_sec() * objects_per_frame as f64,
        hist_json(&r.ack),
        r.locates,
        r.locate_hits,
        r.locates_per_sec(),
        hist_json(&r.locate_lat),
        r.backpressure_parks,
        served.join(","),
        im.ratio,
        r.cache_hits,
        r.cache_misses
    )
}

fn fsync_str(m: FsyncMode) -> &'static str {
    match m {
        FsyncMode::Always => "always",
        FsyncMode::Batch => "batch",
        FsyncMode::Never => "never",
    }
}

fn mode_row(tag: &str, r: &ModeResult) -> Vec<String> {
    vec![
        tag.to_string(),
        r.captures.to_string(),
        format!("{:.0}", r.captures_per_sec()),
        r.ack.p50().to_string(),
        r.ack.p95().to_string(),
        r.ack.p99().to_string(),
        format!("{:.0}", r.locates_per_sec()),
        r.locate_lat.p50().to_string(),
        r.locate_lat.p99().to_string(),
        r.backpressure_parks.to_string(),
    ]
}

fn main() -> io::Result<()> {
    let o = parse_opts();

    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!(
            "SKIP: sandbox forbids binding loopback sockets; daemon_load \
             needs a real cluster and has nothing to measure"
        );
        return Ok(());
    }

    let serial = match o.mode {
        RunMode::Serial | RunMode::Both => Some(run_mode(false, &o)?),
        RunMode::Pipelined => None,
    };
    let pipelined = match o.mode {
        RunMode::Pipelined | RunMode::Both => Some(run_mode(true, &o)?),
        RunMode::Serial => None,
    };

    let header = [
        "mode", "captures", "cap/s", "ack_p50", "ack_p95", "ack_p99", "loc/s",
        "loc_p50", "loc_p99", "parks",
    ];
    let mut rows = Vec::new();
    if let Some(r) = &serial {
        rows.push(mode_row("serial", r));
    }
    if let Some(r) = &pipelined {
        rows.push(mode_row("pipelined", r));
    }
    print_table("daemon_load (latencies in µs)", &header, &rows);
    if let Some(r) = &serial {
        print_imbalance("served-locate imbalance (serial)", &r.served);
    }
    if let Some(r) = &pipelined {
        print_imbalance("served-locate imbalance (pipelined)", &r.served);
    }

    let speedup = match (&serial, &pipelined) {
        (Some(s), Some(p)) => Some(p.captures_per_sec() / s.captures_per_sec().max(1e-9)),
        _ => None,
    };
    if let Some(x) = speedup {
        println!("\npipelined/serial captures-per-sec speedup: {x:.2}x");
    }

    // Hand-rolled JSON (zero-dependency policy, like trace_demo.json).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"daemon_load\",\n  \"config\": {{\"sites\":{},\"seed\":{},\"fsync\":\"{}\",\"rate_frames_per_sec\":{:.0},\"duration_secs\":{:.1},\"objects_per_frame\":{},\"locates_per_site\":{},\"n_max\":{},\"zipf\":{},\"hot_prefix\":{},\"locate_cache\":{}}},\n",
        o.sites,
        o.seed,
        fsync_str(o.fsync),
        o.rate,
        o.duration,
        o.objects_per_frame,
        o.locates_per_site,
        o.n_max,
        o.zipf.map_or("null".into(), |s| format!("{s}")),
        o.hot_prefix.map_or("null".into(), |f| format!("{f}")),
        o.locate_cache.map_or("null".into(), |n| n.to_string()),
    ));
    json.push_str(&format!(
        "  \"serial\": {},\n",
        serial.as_ref().map_or("null".into(), |r| mode_json(r, o.objects_per_frame))
    ));
    json.push_str(&format!(
        "  \"pipelined\": {},\n",
        pipelined.as_ref().map_or("null".into(), |r| mode_json(r, o.objects_per_frame))
    ));
    json.push_str(&format!(
        "  \"speedup_captures_per_sec\": {}\n}}\n",
        speedup.map_or("null".to_string(), |x| format!("{x:.2}"))
    ));
    if let Some(dir) = o.json.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(&o.json)?;
    f.write_all(json.as_bytes())?;
    println!("wrote {}", o.json.display());

    if let Some(floor) = o.min_captures_per_sec {
        let measured = pipelined
            .as_ref()
            .or(serial.as_ref())
            .map(|r| r.captures_per_sec())
            .unwrap_or(0.0);
        if measured < floor {
            eprintln!("FAIL: {measured:.0} captures/sec under the {floor:.0} floor");
            std::process::exit(1);
        }
        println!("floor ok: {measured:.0} >= {floor:.0} captures/sec");
    }
    Ok(())
}
