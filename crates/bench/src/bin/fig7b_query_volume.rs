//! E4 — Fig. 7b: query processing time vs data volume, P2P vs
//! centralized. Writes `results/fig7b.csv`.

use bench::report::{print_table, write_csv};
use bench::{fig7, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = fig7::fig7b(scale);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.objects_per_node.to_string(),
                p.nn.to_string(),
                // Same precision as all_experiments' E4 writer so both
                // producers of results/fig7b.csv emit identical bytes.
                format!("{:.3}", p.p2p_ms),
                format!("{:.3}", p.centralized_ms),
                format!("{:.2}", p.p2p_messages),
                p.warehouse_rows.to_string(),
            ]
        })
        .collect();
    let header = ["objects_per_node", "nn", "p2p_ms", "centralized_ms", "p2p_msgs", "db_rows"];
    write_csv(
        bench::report::results_path("fig7b.csv"), &header, &rows).expect("write results/fig7b.csv");
    print_table(
        &format!("Fig. 7b — trace-query time vs data volume ({scale:?})"),
        &header,
        &rows,
    );
    println!("\nwrote results/fig7b.csv");
}
