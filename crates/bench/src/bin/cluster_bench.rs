//! Loopback-cluster latency bench: the real-socket daemon versus the
//! simulator's latency *model*, same workload, same seed.
//!
//! The simulator charges 5 ms per overlay hop of virtual time; the
//! daemon measures wall-clock — sender-stamped delivery envelopes per
//! message class, plus origin-side locate/trace round-trips — into the
//! same `obs` histograms. This binary runs the identical 5-site §V
//! workload through both and writes `results/cluster_latency.csv` with
//! one row per (class, scope): the modelled virtual-time distribution
//! (`sim-model`, deterministic) beside the measured loopback one
//! (`loopback-wall`, machine-dependent by nature).
//!
//! In sandboxes that forbid binding loopback sockets the cluster half
//! is skipped with a warning and only the deterministic rows are
//! written.
//!
//! ```text
//! cargo run --release -p bench --bin cluster_bench
//! ```

use bench::report::{print_table, results_path, write_csv};
use daemon::LoopbackCluster;
use moods::SiteId;
use obs::{Histogram, SharedRecorder};
use peertrack::Builder;
use simnet::metrics::{MsgClass, ALL_CLASSES};
use simnet::time::secs;
use simnet::SimTime;
use workload::paper::PaperWorkload;

const SITES: usize = 5;
const VOL: usize = 12;
const SEED: u64 = 21;

fn workload_events() -> Vec<workload::CaptureEvent> {
    PaperWorkload {
        sites: SITES,
        objects_per_site: VOL,
        grouped_movement: true,
        seed: SEED,
        ..PaperWorkload::default()
    }
    .generate()
}

/// The query sequence both executions answer (and get charged for).
fn query_plan() -> Vec<(SiteId, moods::ObjectId, SimTime)> {
    let mut plan = Vec::new();
    for site in 0..SITES as u32 {
        for serial in 0..VOL as u64 {
            let o = workload::epc_object(site, serial);
            let origin = SiteId((site + 2) % SITES as u32);
            for i in 0..4u64 {
                plan.push((origin, o, secs(i * 1_400)));
            }
        }
    }
    plan
}

/// Per-class histograms: delivery latencies from the recorder plus the
/// query distribution under [`MsgClass::Query`].
struct Latencies {
    by_class: Vec<Histogram>,
}

impl Latencies {
    fn new() -> Latencies {
        Latencies { by_class: (0..ALL_CLASSES.len()).map(|_| Histogram::new()).collect() }
    }

    fn of(&mut self, class: MsgClass) -> &mut Histogram {
        &mut self.by_class[class as usize]
    }
}

/// Simulator run: virtual-time delivery latencies per class (the 5
/// ms/hop model) and modelled query latencies.
fn sim_latencies() -> Latencies {
    let mut net = Builder::new().sites(SITES).seed(SEED).build();
    let rec = SharedRecorder::new();
    net.set_trace_sink(Box::new(rec.clone()));
    for ev in workload_events() {
        net.schedule_capture(ev.at, ev.site, ev.objects);
    }
    net.run_until_quiescent();

    let mut out = Latencies::new();
    for (origin, o, t) in query_plan() {
        let (_ans, stats) = net.locate(origin, o, t);
        out.of(MsgClass::Query).record(stats.time.as_micros());
    }
    for (class, hist) in rec.borrow().class_latencies() {
        out.of(class).merge(hist);
    }
    out
}

/// Cluster run: wall-clock delivery and query latencies over loopback
/// sockets, merged across every node's recorder.
fn cluster_latencies() -> std::io::Result<Latencies> {
    let mut cluster = LoopbackCluster::start(SITES, SEED)?;
    cluster.run_schedule(&workload_events())?;
    let mut out = Latencies::new();
    for (origin, o, t) in query_plan() {
        let (_ans, _cost, complete) = cluster.locate(origin, o, t)?;
        assert!(complete, "cluster locate incomplete");
    }
    for report in cluster.shutdown()? {
        assert_eq!(report.unsupported, 0, "site {} left the supported regime", report.site.0);
        for (class, hist) in report.recorder.class_latencies() {
            out.of(class).merge(hist);
        }
    }
    Ok(out)
}

fn rows_for(scope: &str, lat: &Latencies) -> Vec<Vec<String>> {
    ALL_CLASSES
        .iter()
        .filter(|&&c| !lat.by_class[c as usize].is_empty())
        .map(|&c| {
            let h = &lat.by_class[c as usize];
            vec![
                format!("{c:?}"),
                scope.to_string(),
                h.count().to_string(),
                h.p50().to_string(),
                h.p95().to_string(),
                h.p99().to_string(),
                format!("{:.1}", h.mean()),
            ]
        })
        .collect()
}

fn main() -> std::io::Result<()> {
    let header =
        ["class", "scope", "count", "p50_us", "p95_us", "p99_us", "mean_us"];

    let sim = sim_latencies();
    let mut rows = rows_for("sim-model", &sim);

    if std::net::TcpListener::bind("127.0.0.1:0").is_ok() {
        let cluster = cluster_latencies()?;
        rows.extend(rows_for("loopback-wall", &cluster));
    } else {
        eprintln!(
            "WARNING: sandbox forbids binding loopback sockets; \
             writing sim-model rows only"
        );
    }

    print_table("latency by class and scope (µs)", &header, &rows);
    let path = results_path("cluster_latency.csv");
    write_csv(&path, &header, &rows)?;
    println!("\nwrote {}", path.display());
    Ok(())
}
