//! Crash-recovery bench: what durability costs on disk and how fast a
//! node comes back, as a function of snapshot cadence.
//!
//! A socket-free WAL universe (the same `daemon::Core` state machine
//! the live engine runs, driven record-by-record with outbound traffic
//! delivered as `Protocol` records) generates one site's real log for
//! the §V workload at several volumes. Each log is then persisted into
//! a scratch [`durable::DataDir`] under different snapshot cadences —
//! `0` meaning *never* (pure log) — and recovered cold, measuring:
//!
//! * `wal_bytes` / `snapshot_bytes` — the disk footprint at rest;
//! * `recover_ms` — wall-clock from `DataDir::open` to a live `Core`
//!   (snapshot decode + tail replay), verified byte-identical to the
//!   state the log described.
//!
//! Deterministic except for the timing columns. Writes
//! `results/recovery.csv`.
//!
//! ```text
//! cargo run --release -p bench --bin recovery_bench
//! ```

use bench::report::{print_table, results_path, write_csv};
use daemon::{Core, WalRecord};
use durable::{DataDir, FsyncMode};
use moods::SiteId;
use peertrack::config::GroupConfig;
use simnet::SimTime;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Instant;
use workload::paper::PaperWorkload;

const SITES: usize = 5;
const SEED: u64 = 21;
const VOLUMES: [usize; 4] = [50, 100, 200, 400];
const CADENCES: [u64; 4] = [0, 8, 32, 128];

fn addr_of(i: usize) -> SocketAddr {
    format!("10.0.0.{}:7000", i + 1).parse().expect("synthetic addr")
}

/// Drive the full workload through `SITES` cores, delivering every
/// outbound message as a logged `Protocol` record, and return each
/// site's complete WAL.
fn generate_logs(volume: usize, group: GroupConfig) -> Vec<Vec<WalRecord>> {
    let mut cores: Vec<Core> =
        (0..SITES).map(|i| Core::new(SiteId(i as u32), SEED, group, addr_of(i))).collect();
    let mut logs: Vec<Vec<WalRecord>> = vec![Vec::new(); SITES];

    let log_apply = |cores: &mut Vec<Core>, logs: &mut Vec<Vec<WalRecord>>,
                     site: usize, rec: WalRecord| {
        logs[site].push(rec.clone());
        cores[site].apply_record(&rec);
        let mut queue: VecDeque<(SiteId, WalRecord)> = VecDeque::new();
        let enqueue = |q: &mut VecDeque<(SiteId, WalRecord)>, from: SiteId, core: &mut Core| {
            for out in core.take_outbox() {
                q.push_back((out.to, WalRecord::Protocol { sender: from, wire: out.wire }));
            }
        };
        enqueue(&mut queue, SiteId(site as u32), &mut cores[site]);
        while let Some((to, rec)) = queue.pop_front() {
            let t = to.0 as usize;
            logs[t].push(rec.clone());
            cores[t].apply_record(&rec);
            enqueue(&mut queue, to, &mut cores[t]);
        }
    };

    for i in 0..SITES {
        for j in 0..SITES {
            let rec =
                WalRecord::Member { site: SiteId(j as u32), addr: addr_of(j).to_string() };
            log_apply(&mut cores, &mut logs, i, rec);
        }
    }
    let events = PaperWorkload {
        sites: SITES,
        objects_per_site: volume,
        grouped_movement: true,
        seed: SEED,
        ..PaperWorkload::default()
    }
    .generate();
    let mut sorted: Vec<&workload::CaptureEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.at);
    let mut last = SimTime::ZERO;
    for ev in &sorted {
        last = ev.at;
        let rec = WalRecord::Capture { at: ev.at, objects: ev.objects.clone() };
        log_apply(&mut cores, &mut logs, ev.site.0 as usize, rec);
    }
    for i in 0..SITES {
        log_apply(&mut cores, &mut logs, i, WalRecord::Flush { now: last + group.t_max });
    }
    logs
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-recovery-bench-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

struct Row {
    volume: usize,
    records: usize,
    snapshot_every: u64,
    wal_bytes: u64,
    snapshot_bytes: u64,
    recover_ms: f64,
}

/// Persist `records` under the given cadence, then recover cold.
fn measure(volume: usize, records: &[WalRecord], snapshot_every: u64) -> Row {
    let group = GroupConfig::default();
    let site = SiteId(0);
    let dir = scratch(&format!("{volume}-{snapshot_every}"));

    // The node's live life: append + apply, snapshot on cadence.
    let (mut data, _) = DataDir::open(&dir, FsyncMode::Batch).expect("open scratch dir");
    let mut live = Core::new(site, SEED, group, addr_of(0));
    let mut since = 0u64;
    for rec in records {
        data.append(&rec.encode()).expect("append");
        live.replay(rec);
        since += 1;
        if snapshot_every > 0 && since >= snapshot_every {
            data.install_snapshot(&live.snapshot_body()).expect("snapshot");
            since = 0;
        }
    }
    data.sync().expect("final sync");
    let wal_bytes = data.wal_bytes().expect("wal size");
    let snapshot_bytes =
        std::fs::metadata(dir.join("snapshot.bin")).map(|m| m.len()).unwrap_or(0);
    drop(data);

    // The crash: cold recovery from the directory alone.
    let t0 = Instant::now();
    let (_, recovery) = DataDir::open(&dir, FsyncMode::Batch).expect("reopen");
    let mut recovered = match &recovery.snapshot {
        Some((_, body)) => Core::from_snapshot(site, SEED, group, body).expect("snapshot loads"),
        None => Core::new(site, SEED, group, addr_of(0)),
    };
    for entry in &recovery.tail {
        recovered.replay(&WalRecord::decode(&entry.payload).expect("payload decodes"));
    }
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        recovered.state_bytes(true),
        live.state_bytes(true),
        "recovery must reproduce the live state exactly"
    );
    std::fs::remove_dir_all(&dir).ok();
    Row { volume, records: records.len(), snapshot_every, wal_bytes, snapshot_bytes, recover_ms }
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    for volume in VOLUMES {
        let logs = generate_logs(volume, GroupConfig::default());
        let site0 = &logs[0];
        for cadence in CADENCES {
            rows.push(measure(volume, site0, cadence));
        }
    }

    let header =
        ["objects_per_site", "records", "snapshot_every", "wal_bytes", "snapshot_bytes", "recover_ms"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.volume.to_string(),
                r.records.to_string(),
                r.snapshot_every.to_string(),
                r.wal_bytes.to_string(),
                r.snapshot_bytes.to_string(),
                format!("{:.3}", r.recover_ms),
            ]
        })
        .collect();
    print_table("Crash recovery: disk footprint and restart time (site 0)", &header, &table);
    write_csv(results_path("recovery.csv"), &header, &table).expect("write recovery.csv");
    println!("wrote {}", results_path("recovery.csv").display());
}
