//! E6 — Fig. 8b: indexing cost (log2 of messages) per Lp scheme across
//! network sizes. Writes `results/fig8b.csv`.

use bench::report::{print_table, write_csv};
use bench::{fig8, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = fig8::fig8b(scale);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scheme.label(),
                p.nn.to_string(),
                p.lp.to_string(),
                p.messages.to_string(),
                format!("{:.2}", p.log2_messages),
            ]
        })
        .collect();
    let header = ["scheme", "nn", "lp", "messages", "log2_messages"];
    write_csv(
        bench::report::results_path("fig8b.csv"), &header, &rows).expect("write results/fig8b.csv");
    print_table(
        &format!("Fig. 8b — indexing cost per scheme ({scale:?})"),
        &header,
        &rows,
    );
    println!("\nwrote results/fig8b.csv");
}
