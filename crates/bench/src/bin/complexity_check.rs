//! Empirical check of the §IV-C complexity analysis:
//!
//! * Chord routing takes `O(log₂ Nn)` hops w.h.p.;
//! * grouping is `Θ(No)`;
//! * group routing is `O(2^Lp · log₂ Nn)` vs `O(No · log₂ Nn)` for
//!   individual routing;
//! * index persisting stays `O(1)` lookups per object with triangles
//!   (height ≤ 2).

use bench::report::print_table;
use chord::Ring;
use ids::Id;
use detrand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    // Hop growth: average lookup hops across sizes vs (1/2)·log2(Nn).
    let mut rows = Vec::new();
    for &n in &[32usize, 64, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ring = Ring::new();
        let mut ids = Vec::new();
        for i in 0..n {
            let id = Id::random(&mut rng);
            if i == 0 {
                ring.bootstrap(id, i);
            } else {
                ring.join(ids[0], id, i).expect("join");
            }
            ids.push(id);
        }
        ring.stabilize_all();

        let trials = 3_000;
        let mut hops = 0u64;
        for _ in 0..trials {
            let key = Id::random(&mut rng);
            let from = ids[rng.gen_range(0..n)];
            hops += ring.lookup(from, key).expect("lookup").hops as u64;
        }
        let avg = hops as f64 / trials as f64;
        let half_log = 0.5 * (n as f64).log2();
        rows.push(vec![
            n.to_string(),
            format!("{avg:.2}"),
            format!("{half_log:.2}"),
            format!("{:.2}", avg / half_log),
        ]);
    }
    print_table(
        "Chord lookup hops vs (1/2)·log2(Nn) — §IV-C routing claim",
        &["nn", "avg_hops", "half_log2", "ratio"],
        &rows,
    );

    // The ratio must hover near a constant (≈1) — that IS the O(log n)
    // claim. Enforce loosely.
    let ratios: Vec<f64> = rows
        .iter()
        .map(|r| r[3].parse::<f64>().expect("ratio parses"))
        .collect();
    let (lo, hi) = ratios
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &r| (l.min(r), h.max(r)));
    assert!(
        hi / lo < 1.6 && lo > 0.5 && hi < 2.0,
        "hop growth deviates from Θ(log n): ratios {ratios:?}"
    );
    println!("\nhop-growth ratio stable in [{lo:.2}, {hi:.2}] — Θ(log Nn) confirmed");
}
