//! Empirical check of the §IV-C complexity analysis, plus the
//! million-scale engine benchmark.
//!
//! Two layers:
//!
//! 1. the original claim checks — Chord routing takes `O(log₂ Nn)` hops
//!    w.h.p. (ratio against `(1/2)·log₂ Nn` must stay flat);
//! 2. the flat-engine scale sweep — `peertrack::flat` on the sharded
//!    executor at ascending geometries, reporting events/second and
//!    peak RSS per point and asserting events grow `Θ(No)`.
//!
//! Modes:
//!
//! * *(default / `--quick`)* — hop check + a sub-second sweep;
//! * `--full` — sweep to the ROADMAP target (10⁶ nodes / 10⁷ objects)
//!   and time the same geometry at `T ∈ {1, 8}` threads;
//! * `--json PATH` — also write the sweep as JSON (BENCH_simnet.json);
//! * `--shard-csv PATH [--threads T]` — run one canonical sharded
//!   geometry and dump every deterministic output to a CSV. `verify.sh`
//!   runs this at `T = 1` and `T = 4` and requires the files to be
//!   byte-identical — the sharded-determinism gate.

use bench::report::{class_traffic_rows, log_log_slope, print_table, write_csv};
use bench::scale::{flat_config, run_point, sweep_sizes, ScalePoint};
use chord::Ring;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use ids::Id;
use peertrack::flat::FlatConfig;
use std::fmt::Write as _;

struct Args {
    full: bool,
    json: Option<String>,
    shard_csv: Option<String>,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args { full: false, json: None, shard_csv: None, threads: 1 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.full = false,
            "--full" => args.full = true,
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--shard-csv" => {
                args.shard_csv = Some(it.next().expect("--shard-csv needs a path"));
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// The §IV-C routing claim: average lookup hops across network sizes
/// stays a constant multiple of `(1/2)·log₂ Nn`.
fn chord_hop_check() {
    let mut rows = Vec::new();
    for &n in &[32usize, 64, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ring = Ring::new();
        let mut ids = Vec::new();
        for i in 0..n {
            let id = Id::random(&mut rng);
            if i == 0 {
                ring.bootstrap(id, i);
            } else {
                ring.join(ids[0], id, i).expect("join");
            }
            ids.push(id);
        }
        ring.stabilize_all();

        let trials = 3_000;
        let mut hops = 0u64;
        for _ in 0..trials {
            let key = Id::random(&mut rng);
            let from = ids[rng.gen_range(0..n)];
            hops += ring.lookup(from, key).expect("lookup").hops as u64;
        }
        let avg = hops as f64 / trials as f64;
        let half_log = 0.5 * (n as f64).log2();
        rows.push(vec![
            n.to_string(),
            format!("{avg:.2}"),
            format!("{half_log:.2}"),
            format!("{:.2}", avg / half_log),
        ]);
    }
    print_table(
        "Chord lookup hops vs (1/2)·log2(Nn) — §IV-C routing claim",
        &["nn", "avg_hops", "half_log2", "ratio"],
        &rows,
    );

    // The ratio must hover near a constant (≈1) — that IS the O(log n)
    // claim. Enforce loosely.
    let ratios: Vec<f64> = rows
        .iter()
        .map(|r| r[3].parse::<f64>().expect("ratio parses"))
        .collect();
    let (lo, hi) = ratios
        .iter()
        .fold((f64::MAX, f64::MIN), |(l, h), &r| (l.min(r), h.max(r)));
    assert!(
        hi / lo < 1.6 && lo > 0.5 && hi < 2.0,
        "hop growth deviates from Θ(log n): ratios {ratios:?}"
    );
    println!("\nhop-growth ratio stable in [{lo:.2}, {hi:.2}] — Θ(log Nn) confirmed");
}

/// Ascending flat-engine sweep; returns the measured points.
fn scale_sweep(full: bool) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for (nodes, objects) in sweep_sizes(full) {
        let (p, r) = run_point(&flat_config(nodes, objects));
        assert_eq!(
            p.violations,
            0,
            "violations at {nodes} nodes / {objects} objects: locates_bad={} \
             out_of_order={} iop_bad={} examples={:#?}",
            r.locates_bad,
            r.out_of_order,
            r.iop_bad,
            r.violations
        );
        points.push(p);
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                p.objects.to_string(),
                p.shards.to_string(),
                p.events.to_string(),
                p.windows.to_string(),
                p.wall_ms.to_string(),
                p.events_per_sec.to_string(),
                p.peak_rss_mib.to_string(),
            ]
        })
        .collect();
    print_table(
        "flat engine scale sweep (ascending; RSS is the process high-water mark)",
        &["nodes", "objects", "shards", "events", "windows", "wall_ms", "events_per_s", "peak_rss_mib"],
        &rows,
    );

    // Events must grow Θ(No): the log-log slope of (objects, events)
    // stays within a loose band around 1.
    let slope = log_log_slope(
        &points.iter().map(|p| (p.objects as f64, p.events as f64)).collect::<Vec<_>>(),
    );
    assert!(
        (0.8..=1.2).contains(&slope),
        "event count is not Θ(No): log-log slope {slope:.3}"
    );
    println!("\nevents grow Θ(No): log-log slope {slope:.3}");
    points
}

/// Time the largest sweep geometry at T ∈ {1, 8}. On a single-core
/// host the speedup is honestly ≤ 1 — the determinism gate, not this
/// number, is what `verify.sh` enforces.
fn thread_timing(points: &[ScalePoint]) -> (u32, u32, u64, u64) {
    let largest = points.last().expect("sweep is non-empty");
    let t1_ms = largest.wall_ms; // the sweep already ran it at T = 1
    let cfg8 =
        FlatConfig { threads: 8, ..flat_config(largest.nodes, largest.objects) };
    let (p8, _) = run_point(&cfg8);
    assert_eq!(p8.violations, 0);
    assert_eq!(p8.events, largest.events, "thread count changed the event count");
    println!(
        "\nthread timing at {} nodes / {} objects: T=1 {} ms, T=8 {} ms (speedup {:.2}x, host parallelism {})",
        largest.nodes,
        largest.objects,
        t1_ms,
        p8.wall_ms,
        t1_ms as f64 / p8.wall_ms as f64,
        host_parallelism(),
    );
    (largest.nodes, largest.objects, t1_ms, p8.wall_ms)
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

fn write_json(
    path: &str,
    points: &[ScalePoint],
    timing: Option<(u32, u32, u64, u64)>,
) {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"simnet_scale\",\n");
    let _ = writeln!(json, "  \"host_parallelism\": {},", host_parallelism());
    json.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"nodes\":{},\"objects\":{},\"shards\":{},\"threads\":{},\"events\":{},\"windows\":{},\"records\":{},\"wall_ms\":{},\"events_per_sec\":{},\"peak_rss_mib\":{},\"violations\":{}}}",
            p.nodes,
            p.objects,
            p.shards,
            p.threads,
            p.events,
            p.windows,
            p.records,
            p.wall_ms,
            p.events_per_sec,
            p.peak_rss_mib,
            p.violations,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    if let Some((nodes, objects, t1_ms, t8_ms)) = timing {
        let _ = writeln!(
            json,
            "  \"thread_timing\": {{\"nodes\":{nodes},\"objects\":{objects},\"t1_ms\":{t1_ms},\"t8_ms\":{t8_ms},\"speedup\":{:.3}}},",
            t1_ms as f64 / t8_ms as f64
        );
    }
    json.push_str(
        "  \"note\": \"speedup is bounded by host_parallelism; T-invariance of results is gated byte-for-byte in verify.sh\"\n}\n",
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(path, json).expect("write bench json");
    println!("wrote {path}");
}

/// The sharded-determinism gate: run one canonical geometry and dump
/// every thread-independent output. Two invocations with different
/// `--threads` must produce byte-identical files.
fn shard_determinism_csv(path: &str, threads: usize) {
    let cfg = FlatConfig { threads, ..flat_config(20_000, 100_000) };
    let (p, report) = run_point(&cfg);
    assert_eq!(p.violations, 0, "violations: {:?}", report.violations);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["nodes".into(), cfg.nodes.to_string()],
        vec!["objects".into(), cfg.objects.to_string()],
        vec!["shards".into(), cfg.shards.to_string()],
        vec!["seed".into(), cfg.seed.to_string()],
        vec!["events".into(), report.events.to_string()],
        vec!["windows".into(), report.windows.to_string()],
        vec!["records".into(), report.records.to_string()],
        vec!["open_tails".into(), report.open_tails.to_string()],
        vec!["locates_ok".into(), report.locates_ok.to_string()],
        vec!["locates_bad".into(), report.locates_bad.to_string()],
        vec!["out_of_order".into(), report.out_of_order.to_string()],
        vec!["iop_bad".into(), report.iop_bad.to_string()],
    ];
    for class_row in class_traffic_rows(&report.metrics) {
        let [class, messages, bytes, hops] = &class_row[..] else {
            unreachable!("class_traffic_rows yields 4 columns")
        };
        rows.push(vec![format!("msgs_{class}"), messages.clone()]);
        rows.push(vec![format!("bytes_{class}"), bytes.clone()]);
        rows.push(vec![format!("hops_{class}"), hops.clone()]);
    }
    write_csv(path, &["key", "value"], &rows).expect("write shard csv");
    println!("wrote {path} (threads={threads}; file content is thread-independent)");
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.shard_csv {
        shard_determinism_csv(path, args.threads);
        return;
    }
    chord_hop_check();
    let points = scale_sweep(args.full);
    let timing = if args.full { Some(thread_timing(&points)) } else { None };
    if let Some(path) = &args.json {
        write_json(path, &points, timing);
    }
}
