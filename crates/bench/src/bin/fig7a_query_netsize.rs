//! E3 — Fig. 7a: query processing time vs network size, P2P vs
//! centralized. Writes `results/fig7a.csv`.

use bench::report::{print_table, write_csv};
use bench::{fig7, Scale};

fn main() {
    let scale = Scale::from_env();
    let points = fig7::fig7a(scale);

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nn.to_string(),
                p.objects_per_node.to_string(),
                // Same precision as all_experiments' E3 writer so both
                // producers of results/fig7a.csv emit identical bytes.
                format!("{:.3}", p.p2p_ms),
                format!("{:.3}", p.centralized_ms),
                format!("{:.2}", p.p2p_messages),
                p.warehouse_rows.to_string(),
            ]
        })
        .collect();
    let header = ["nn", "objects_per_node", "p2p_ms", "centralized_ms", "p2p_msgs", "db_rows"];
    write_csv(
        bench::report::results_path("fig7a.csv"), &header, &rows).expect("write results/fig7a.csv");
    print_table(
        &format!("Fig. 7a — trace-query time vs network size ({scale:?})"),
        &header,
        &rows,
    );
    println!("\nwrote results/fig7a.csv");
}
