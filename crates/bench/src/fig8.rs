//! E5/E6 — Fig. 8: the effect of the prefix length `Lp`.
//!
//! Three schemes (§V-C): `Lp = log₂Nn`, `log₂Nn + log₂log₂Nn` (the
//! paper's choice), and `2·log₂Nn`. Fig. 8a shows load-balance curves
//! (load % carried by the hottest x % of nodes); Fig. 8b shows the
//! indexing cost (log₂ of messages) as the network grows.

use crate::report::{gini, load_curve};
use crate::{parallel_sweep, Scale};
use peertrack::{Builder, GroupConfig, IndexingMode, PrefixScheme};
use workload::paper::PaperWorkload;

/// All three §V-C schemes, in figure order.
pub const SCHEMES: [PrefixScheme; 3] =
    [PrefixScheme::Scheme1, PrefixScheme::Scheme2, PrefixScheme::Scheme3];

/// Load-balance measurement for one scheme (Fig. 8a).
#[derive(Clone, Debug)]
pub struct BalancePoint {
    /// The scheme measured.
    pub scheme: PrefixScheme,
    /// `(node fraction, load fraction)` curve, hottest nodes first.
    pub curve: Vec<(f64, f64)>,
    /// Gini coefficient of the load distribution.
    pub gini: f64,
    /// `Lp` in effect.
    pub lp: usize,
    /// Fraction of nodes that index at least one group (the paper's δ).
    pub delta_observed: f64,
}

/// Indexing-cost measurement for one (scheme, network size) pair
/// (Fig. 8b).
#[derive(Clone, Debug)]
pub struct SchemeCostPoint {
    /// The scheme measured.
    pub scheme: PrefixScheme,
    /// Network size.
    pub nn: usize,
    /// Indexing messages.
    pub messages: u64,
    /// `log₂(messages)` — the figure's y axis.
    pub log2_messages: f64,
    /// `Lp` in effect.
    pub lp: usize,
}

fn group_mode_with(scheme: PrefixScheme) -> IndexingMode {
    // Same window regime as experiment_group_mode(), with the scheme
    // under test.
    IndexingMode::Group(GroupConfig { scheme, n_max: 100_000, ..GroupConfig::default() })
}

fn run_with_scheme(scheme: PrefixScheme, nn: usize, vol: usize, seed: u64) -> (Vec<u64>, u64, usize) {
    let mut net = Builder::new().sites(nn).seed(seed).mode(group_mode_with(scheme)).build();
    let wl = PaperWorkload { sites: nn, objects_per_site: vol, seed, ..PaperWorkload::default() };
    for ev in wl.generate() {
        net.schedule_capture(ev.at, ev.site, ev.objects);
    }
    net.run_until_quiescent();
    let loads = net.load_distribution();
    let messages = net.metrics().indexing_messages();
    (loads, messages, net.current_lp())
}

/// Fig. 8a: load balance at 512 nodes × 5 000 objects/node (scaled).
pub fn fig8a(scale: Scale) -> Vec<BalancePoint> {
    let nn = scale.nodes(512);
    let vol = scale.objects(5_000);
    parallel_sweep(SCHEMES.to_vec(), |&scheme| {
        let (loads, _msgs, lp) = run_with_scheme(scheme, nn, vol, 42);
        let busy = loads.iter().filter(|&&l| l > 0).count();
        BalancePoint {
            scheme,
            curve: load_curve(&loads, 20),
            gini: gini(&loads),
            lp,
            delta_observed: busy as f64 / loads.len() as f64,
        }
    })
}

/// Fig. 8b: indexing cost per scheme across network sizes (5 000
/// objects/node, scaled).
pub fn fig8b(scale: Scale) -> Vec<SchemeCostPoint> {
    let vol = scale.objects(5_000);
    let sizes: Vec<usize> = [64usize, 128, 256, 512].iter().map(|&n| scale.nodes(n)).collect();
    let mut jobs = Vec::new();
    for &scheme in &SCHEMES {
        for &n in &sizes {
            jobs.push((scheme, n));
        }
    }
    parallel_sweep(jobs, |&(scheme, n)| {
        let (_loads, messages, lp) = run_with_scheme(scheme, n, vol, 42);
        SchemeCostPoint {
            scheme,
            nn: n,
            messages,
            log2_messages: (messages.max(1) as f64).log2(),
            lp,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_ordering_of_balance_and_cost() {
        // Miniature Fig. 8: balance improves 1 → 2 → 3 while cost rises.
        let nn = 48;
        let vol = 200;
        let results: Vec<_> = SCHEMES
            .iter()
            .map(|&s| {
                let (loads, msgs, lp) = run_with_scheme(s, nn, vol, 13);
                (gini(&loads), msgs, lp)
            })
            .collect();
        let (g1, m1, l1) = results[0];
        let (g2, m2, l2) = results[1];
        let (g3, m3, l3) = results[2];
        assert!(l1 <= l2 && l2 <= l3, "Lp must be ordered: {l1} {l2} {l3}");
        assert!(g1 >= g2 && g2 >= g3, "balance must improve with Lp: {g1:.3} {g2:.3} {g3:.3}");
        assert!(m1 <= m2 && m2 <= m3, "cost must grow with Lp: {m1} {m2} {m3}");
    }

    #[test]
    fn scheme2_delta_is_high() {
        // Eq. 5/6: with Scheme 2, almost every node indexes something.
        let points = fig8a(Scale::Quick);
        let s2 = points.iter().find(|p| p.scheme == PrefixScheme::Scheme2).unwrap();
        assert!(s2.delta_observed > 0.9, "observed δ = {}", s2.delta_observed);
        // And it beats Scheme 1 substantially.
        let s1 = points.iter().find(|p| p.scheme == PrefixScheme::Scheme1).unwrap();
        assert!(s1.delta_observed < s2.delta_observed);
    }
}
