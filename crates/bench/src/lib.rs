//! Experiment harness: regenerates every figure of §V.
//!
//! | Experiment | Paper figure | Module |
//! |---|---|---|
//! | E1 | Fig. 6a — indexing cost vs data volume | [`fig6`] |
//! | E2 | Fig. 6b — indexing cost vs network size | [`fig6`] |
//! | E3 | Fig. 7a — query time vs network size | [`fig7`] |
//! | E4 | Fig. 7b — query time vs data volume | [`fig7`] |
//! | E5 | Fig. 8a — load balance per `Lp` scheme | [`fig8`] |
//! | E6 | Fig. 8b — indexing cost per `Lp` scheme | [`fig8`] |
//!
//! Each module exposes a `run(scale)` returning typed rows plus a CSV
//! writer; the `all_experiments` binary drives everything and prints the
//! paper-shaped series. [`Scale`] lets CI run the same code at reduced
//! size; the committed EXPERIMENTS.md numbers use [`Scale::Full`].
//!
//! Sweeps fan out across OS threads (one deterministic `Sim` per point,
//! results joined in order) via [`parallel_sweep`] — the experiments are
//! embarrassingly parallel and the engine is single-threaded by design.

#![forbid(unsafe_code)]

pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod harness;
pub mod report;
pub mod scale;

use peertrack::{GroupConfig, IndexingMode};
use std::str::FromStr;

/// The group configuration the experiments run: the paper's §IV-C cost
/// analysis assumes capture windows large relative to the group count
/// ("the number of received objects No can be very large, while
/// 2^Lp ... is relatively small"), so `Nmax` is set high enough that a
/// site's whole inventory wave fits one indexing cycle. All other
/// parameters are the library defaults.
pub fn experiment_group_mode() -> IndexingMode {
    IndexingMode::Group(GroupConfig { n_max: 100_000, ..GroupConfig::default() })
}

/// Experiment size: `Full` is the paper's setup; `Quick` divides data
/// volume by 10 and network size by 4 for smoke tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's parameters (512 nodes, 5 000 objects/node max).
    Full,
    /// Reduced parameters for fast runs.
    Quick,
}

impl Scale {
    /// Read from the `PEERTRACK_SCALE` environment variable
    /// (`full`/`quick`), defaulting to `Quick`.
    pub fn from_env() -> Scale {
        std::env::var("PEERTRACK_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Scale::Quick)
    }

    /// Divide an object count by the scale factor.
    pub fn objects(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 10).max(10),
        }
    }

    /// Divide a node count by the scale factor.
    pub fn nodes(&self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(8),
        }
    }
}

impl FromStr for Scale {
    type Err = String;
    fn from_str(s: &str) -> Result<Scale, String> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Ok(Scale::Full),
            "quick" => Ok(Scale::Quick),
            other => Err(format!("unknown scale {other:?} (want full|quick)")),
        }
    }
}

/// Run `f` over `inputs` on worker threads (one per input, capped at the
/// parallelism the OS reports), returning outputs in input order.
///
/// Each point builds its own deterministic `Sim`, so results are
/// identical to a sequential run — this only buys wall-clock.
pub fn parallel_sweep<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    // Workers claim contiguous *chunks* of input indices from a shared
    // counter (4 chunks per worker keeps the tail balanced without
    // hammering the counter once per point) and stream (index, output)
    // pairs back; the scope owner reassembles in order.
    let chunk = n.div_ceil(workers * 4).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, O)>();
    let inputs = &inputs;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    tx.send((i, f(&inputs[i]))).expect("collector alive");
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for (i, o) in rx {
            out[i] = Some(o);
        }
        out.into_iter().map(|o| o.expect("all slots filled")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!("full".parse::<Scale>().unwrap(), Scale::Full);
        assert_eq!("QUICK".parse::<Scale>().unwrap(), Scale::Quick);
        assert!("huge".parse::<Scale>().is_err());
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::Full.objects(5000), 5000);
        assert_eq!(Scale::Quick.objects(5000), 500);
        assert_eq!(Scale::Quick.objects(50), 10);
        assert_eq!(Scale::Full.nodes(512), 512);
        assert_eq!(Scale::Quick.nodes(512), 128);
    }

    #[test]
    fn parallel_sweep_preserves_order_and_results() {
        let inputs: Vec<u64> = (0..50).collect();
        let out = parallel_sweep(inputs.clone(), |&x| x * x);
        let expect: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_sweep_empty() {
        let out: Vec<u32> = parallel_sweep(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_sweep_chunking_covers_awkward_sizes() {
        // Sizes around the chunk boundaries: smaller than the worker
        // count, prime, one-off from a chunk multiple.
        for n in [1usize, 2, 3, 7, 31, 97, 103, 128] {
            let inputs: Vec<usize> = (0..n).collect();
            let out = parallel_sweep(inputs.clone(), |&x| x + 1);
            let expect: Vec<usize> = inputs.iter().map(|x| x + 1).collect();
            assert_eq!(out, expect, "n={n}");
        }
    }
}
