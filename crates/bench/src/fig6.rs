//! E1/E2 — Fig. 6: scalability of indexing.
//!
//! Fig. 6a sweeps data volume (500·i objects per node, i = 1..10) on a
//! 512-node *dynamic* network (nodes join mid-run) and compares the
//! individual and group indexing algorithms. Fig. 6b fixes 5 000
//! objects/node and sweeps the network size over {64, 128, 256, 512}
//! with three series: individual indexing, group indexing with grouped
//! movement, and group indexing with individual movement.

use crate::{experiment_group_mode, parallel_sweep, Scale};
use peertrack::{Builder, IndexingMode, TraceableNetwork};
use simnet::time::secs;
use workload::paper::PaperWorkload;

/// One measured sweep point.
#[derive(Clone, Debug)]
pub struct IndexingPoint {
    /// Network size.
    pub nn: usize,
    /// Objects generated per node.
    pub objects_per_node: usize,
    /// Series label.
    pub series: String,
    /// Indexing cost in messages (§V-A's metric).
    pub messages: u64,
    /// Indexing cost in payload bytes ("total volume of messages").
    pub bytes: u64,
    /// Indexing cost in hop-transmissions (each message once per overlay
    /// hop crossed — the §IV-C routing-cost view).
    pub hops: u64,
    /// The `Lp` in effect at the end of the run (0 for individual).
    pub lp: usize,
}

/// Run one indexing experiment: build the network, replay the §V
/// workload, optionally churn `joins` nodes in mid-run (Fig. 6a's
/// "dynamic network"), and report the indexing cost.
pub fn run_indexing(
    nn: usize,
    objects_per_node: usize,
    mode: IndexingMode,
    grouped_movement: bool,
    joins: usize,
    seed: u64,
) -> IndexingPoint {
    let mut net = Builder::new().sites(nn).seed(seed).mode(mode).build();
    let wl = PaperWorkload {
        sites: nn,
        objects_per_site: objects_per_node,
        grouped_movement,
        seed,
        ..PaperWorkload::default()
    };
    for ev in wl.generate() {
        net.schedule_capture(ev.at, ev.site, ev.objects);
    }

    if joins > 0 {
        // Dynamic network: process the opening of the inventory wave,
        // then admit new organizations. Note that `join_site` drains the
        // event queue (handoff must complete before control returns), so
        // the first join also finishes indexing the scheduled workload;
        // the joins' split/merge migrations are part of the measured
        // indexing cost either way.
        net.run_until(wl.start + secs(60));
        for _ in 0..joins {
            net.join_site();
        }
    }
    net.run_until_quiescent();

    let series = match (mode, grouped_movement) {
        (IndexingMode::Individual, _) => "individual".to_string(),
        (IndexingMode::Group(_), true) => "group (movement in group)".to_string(),
        (IndexingMode::Group(_), false) => "group (movement individually)".to_string(),
    };
    let m = net.metrics();
    IndexingPoint {
        nn: net.live_sites(),
        objects_per_node,
        series,
        messages: m.indexing_messages(),
        bytes: m.indexing_bytes(),
        hops: m.indexing_hops(),
        lp: net.current_lp(),
    }
}

/// Build a default group-mode network of `nn` sites (shared by other
/// experiment modules).
pub fn default_group_net(nn: usize, seed: u64) -> TraceableNetwork {
    Builder::new().sites(nn).seed(seed).mode(IndexingMode::group_default()).build()
}

/// Fig. 6a: 512 nodes (scaled), data volume 500·i for i in 1..=10
/// (scaled), dynamic network (8 joins mid-run), individual vs group.
pub fn fig6a(scale: Scale) -> Vec<IndexingPoint> {
    let nn = scale.nodes(512);
    let volumes: Vec<usize> = (1..=10).map(|i| scale.objects(500 * i)).collect();
    let mut jobs = Vec::new();
    for &v in &volumes {
        jobs.push((v, IndexingMode::Individual));
        jobs.push((v, experiment_group_mode()));
    }
    parallel_sweep(jobs, |&(v, mode)| run_indexing(nn, v, mode, true, 8, 42))
}

/// Fig. 6b: 5 000 objects/node (scaled), network size sweep, three
/// series.
pub fn fig6b(scale: Scale) -> Vec<IndexingPoint> {
    let vol = scale.objects(5_000);
    let sizes: Vec<usize> = [64usize, 128, 256, 512].iter().map(|&n| scale.nodes(n)).collect();
    let mut jobs = Vec::new();
    for &n in &sizes {
        jobs.push((n, IndexingMode::Individual, true));
        jobs.push((n, experiment_group_mode(), true));
        jobs.push((n, experiment_group_mode(), false));
    }
    parallel_sweep(jobs, |&(n, mode, grouped)| run_indexing(n, vol, mode, grouped, 0, 42))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_beats_individual_at_high_volume() {
        // The Fig. 6a headline at miniature scale. The separation factor
        // is governed by window occupancy No/2^Lp (see EXPERIMENTS.md):
        // at 32 nodes Scheme 2 gives Lp=8 (256 groups), so 2 000 objects
        // per window load each group with ~8 objects and the group
        // algorithm collapses thousands of arrival reports into a few
        // hundred group messages.
        let ind = run_indexing(32, 2_000, IndexingMode::Individual, true, 0, 7);
        let grp = run_indexing(32, 2_000, IndexingMode::group_default(), true, 0, 7);
        assert!(
            grp.messages * 2 < ind.messages,
            "group {} should be well under individual {}",
            grp.messages,
            ind.messages
        );
        assert!(grp.bytes < ind.bytes, "volume should shrink too");
    }

    #[test]
    fn costs_are_near_parity_at_low_volume() {
        // Fig. 6a: "when the data volume is not high ... the group
        // indexing algorithm costs almost the same as the individual".
        // With ~1 object per group the ratio approaches 1 (group still
        // saves a little via batched IOP updates).
        let ind = run_indexing(32, 8, IndexingMode::Individual, true, 0, 7);
        let grp = run_indexing(32, 8, IndexingMode::group_default(), true, 0, 7);
        let ratio = grp.messages as f64 / ind.messages as f64;
        assert!(ratio > 0.4 && ratio <= 1.1, "low-volume ratio {ratio}");
    }

    #[test]
    fn dynamic_network_still_counts_split_traffic() {
        let with_churn = run_indexing(16, 50, IndexingMode::group_default(), true, 6, 9);
        assert!(with_churn.nn == 22, "6 joins over 16 sites");
        assert!(with_churn.messages > 0);
    }

    #[test]
    fn grouped_movement_cheaper_than_individual_movement() {
        // Fig. 6b: "the indexing costs less when the objects move in
        // groups".
        let grouped = run_indexing(32, 300, IndexingMode::group_default(), true, 0, 11);
        let individual = run_indexing(32, 300, IndexingMode::group_default(), false, 0, 11);
        assert!(
            grouped.messages < individual.messages,
            "grouped {} !< individual-movement {}",
            grouped.messages,
            individual.messages
        );
    }
}
