//! Minimal timing harness behind the `cargo bench` binaries.
//!
//! A criterion substitute small enough to live in-tree (hermetic-build
//! policy): warmup to calibrate an iteration count, then a fixed number
//! of wall-clock samples, reported as median/min/max ns per iteration
//! plus derived throughput. No statistics beyond order statistics —
//! the paper's claims are complexity-shaped, and complexity_check does
//! the curve fitting; these binaries exist to catch gross constant-
//! factor regressions.
//!
//! `cargo bench` invokes each `harness = false` binary with `--bench`
//! and any user filter; [`Harness::from_env`] honours the filter by
//! substring on `group/id` names.

use std::time::{Duration, Instant};

/// Target wall-clock time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Wall-clock spent calibrating the per-sample iteration count.
const WARMUP_TARGET: Duration = Duration::from_millis(100);
/// Measured samples per benchmark.
const SAMPLES: usize = 20;

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration → MB/s.
    Bytes(u64),
    /// Logical elements processed per iteration → Melem/s.
    Elements(u64),
}

/// Top-level driver: owns the CLI filter and prints the report.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Build from `std::env::args`, ignoring flags (`--bench`, `--quiet`
    /// and friends come from cargo); the first free argument is a
    /// substring filter on `group/id`.
    pub fn from_env() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// Start a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group { harness: self, name: name.to_string(), throughput: None }
    }

    fn runs(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

impl Default for Harness {
    fn default() -> Harness {
        Harness::from_env()
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Set the per-iteration work amount for throughput reporting on
    /// subsequent `bench*` calls.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `routine` (timed in bulk, `iters` calls per sample).
    pub fn bench<F: FnMut()>(&mut self, id: impl std::fmt::Display, mut routine: F) {
        let full_id = format!("{}/{}", self.name, id);
        if !self.harness.runs(&full_id) {
            return;
        }
        // Warmup doubles the batch size until it fills the target, which
        // both warms caches and calibrates iterations-per-sample.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                routine();
            }
            let elapsed = t0.elapsed();
            if elapsed >= WARMUP_TARGET {
                let per_iter = elapsed.as_nanos().max(1) / batch as u128;
                let iters = (SAMPLE_TARGET.as_nanos() / per_iter).clamp(1, u64::MAX as u128);
                report(&full_id, self.throughput, &sample(iters as u64, || routine()));
                return;
            }
            batch = batch.saturating_mul(2);
        }
    }

    /// Measure `routine` on fresh input from `setup` each iteration;
    /// only `routine` is timed.
    pub fn bench_batched<T, S, F>(&mut self, id: impl std::fmt::Display, mut setup: S, mut routine: F)
    where
        S: FnMut() -> T,
        F: FnMut(T),
    {
        let full_id = format!("{}/{}", self.name, id);
        if !self.harness.runs(&full_id) {
            return;
        }
        // Setup dominates warmup cost; calibrate on a handful of runs.
        let t0 = Instant::now();
        let mut calib = 0u64;
        while t0.elapsed() < WARMUP_TARGET || calib < 3 {
            let input = setup();
            routine(input);
            calib += 1;
        }
        let per_ns: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let input = setup();
                let t = Instant::now();
                routine(input);
                t.elapsed().as_nanos() as f64
            })
            .collect();
        report(&full_id, self.throughput, &per_ns);
    }

    /// End the group (parity with the criterion API; prints nothing).
    pub fn finish(self) {}
}

/// Take [`SAMPLES`] timings of `iters` calls each; returns ns/iter.
fn sample<F: FnMut()>(iters: u64, mut routine: F) -> Vec<f64> {
    (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                routine();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect()
}

fn report(full_id: &str, throughput: Option<Throughput>, per_iter_ns: &[f64]) {
    let mut sorted = per_iter_ns.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!("  {:>10.1} MB/s", n as f64 / median * 1e9 / 1e6),
        Throughput::Elements(n) => {
            format!("  {:>10.3} Melem/s", n as f64 / median * 1e9 / 1e6)
        }
    });
    println!(
        "{full_id:<40} median {:>12}/iter   (min {:>12}, max {:>12}){}",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_returns_requested_count() {
        let s = sample(10, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(s.len(), SAMPLES);
        assert!(s.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn filter_matches_substring() {
        let h = Harness { filter: Some("sha1".into()) };
        assert!(h.runs("sha1/64"));
        assert!(!h.runs("chord_lookup/256"));
        let all = Harness { filter: None };
        assert!(all.runs("anything"));
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(4_560.0), "4.56 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
