//! Chord lookup latency (in-memory routing work) across ring sizes —
//! the §IV-C `O(log Nn)` hop bound is checked by complexity_check; this
//! measures the constant factor.

use bench::harness::Harness;
use chord::Ring;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use ids::Id;
use std::hint::black_box;

fn build(n: usize) -> (Ring, Vec<Id>) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ring = Ring::new();
    let mut ids = Vec::new();
    for i in 0..n {
        let id = Id::random(&mut rng);
        if i == 0 {
            ring.bootstrap(id, i);
        } else {
            ring.join(ids[0], id, i).expect("join");
        }
        ids.push(id);
    }
    ring.stabilize_all();
    (ring, ids)
}

fn main() {
    let mut h = Harness::from_env();
    let mut g = h.group("chord_lookup");
    for n in [64usize, 256, 1024] {
        let (ring, ids) = build(n);
        let mut rng = StdRng::seed_from_u64(9);
        g.bench(n, || {
            let key = Id::from_u64(rng.gen());
            let from = ids[rng.gen_range(0..ids.len())];
            black_box(ring.lookup(from, key).expect("lookup"));
        });
    }
    g.finish();
}
