//! Chord lookup latency (in-memory routing work) across ring sizes —
//! the §IV-C `O(log Nn)` hop bound is checked by complexity_check; this
//! measures the constant factor.

use chord::Ring;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ids::Id;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn build(n: usize) -> (Ring, Vec<Id>) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ring = Ring::new();
    let mut ids = Vec::new();
    for i in 0..n {
        let id = Id::random(&mut rng);
        if i == 0 {
            ring.bootstrap(id, i);
        } else {
            ring.join(ids[0], id, i).expect("join");
        }
        ids.push(id);
    }
    ring.stabilize_all();
    (ring, ids)
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord_lookup");
    for n in [64usize, 256, 1024] {
        let (ring, ids) = build(n);
        let mut rng = StdRng::seed_from_u64(9);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let key = Id::from_u64(rng.gen());
                let from = ids[rng.gen_range(0..ids.len())];
                black_box(ring.lookup(from, key).expect("lookup"))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lookup
}
criterion_main!(benches);
