//! End-to-end locate/trace on a warm network — the CPU-side cost behind
//! every Fig. 7 data point (simulated latency excluded; this is the
//! routing + IOP traversal work).

use bench::harness::Harness;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use moods::SiteId;
use peertrack::Builder;
use simnet::SimTime;
use std::hint::black_box;

fn main() {
    // 64 sites, 200 objects moving through 6-site routes.
    let mut net = Builder::new().sites(64).seed(3).build();
    let objects: Vec<_> =
        (0..200u64).map(|i| moods::ObjectId::from_raw(&i.to_be_bytes())).collect();
    let mut rng = StdRng::seed_from_u64(5);
    for (i, &o) in objects.iter().enumerate() {
        let mut t = SimTime::from_secs(1 + i as u64);
        for _ in 0..6 {
            let s = SiteId(rng.gen_range(0..64));
            net.schedule_capture(t, s, vec![o]);
            t += SimTime::from_secs(120);
        }
    }
    net.run_until_quiescent();

    let mut h = Harness::from_env();
    let mut g = h.group("query_hot_path");
    let mut i = 0usize;
    g.bench("locate", || {
        i += 1;
        let o = objects[i % objects.len()];
        let from = SiteId((i % 64) as u32);
        black_box(net.locate(from, o, SimTime::from_secs(100_000)));
    });
    let mut i = 0usize;
    g.bench("trace_lifetime", || {
        i += 1;
        let o = objects[i % objects.len()];
        let from = SiteId((i % 64) as u32);
        black_box(net.trace(from, o, SimTime::ZERO, SimTime::INFINITY));
    });
    g.finish();
}
