//! Group generation (§IV-A.1) — the per-window partitioning that runs
//! on every indexing cycle; §IV-C claims Θ(No).

use bench::harness::{Harness, Throughput};
use moods::ObjectId;
use peertrack::grouping::group_batch;
use simnet::SimTime;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_env();
    let mut g = h.group("group_generation");
    for (n, lp) in [(1_000usize, 8usize), (10_000, 13), (10_000, 8)] {
        let obs: Vec<(ObjectId, SimTime)> = (0..n)
            .map(|i| (ObjectId::from_raw(&(i as u64).to_be_bytes()), SimTime(i as u64)))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench(format!("lp{lp}/{n}"), || {
            black_box(group_batch(black_box(&obs), lp));
        });
    }
    g.finish();
}
