//! Data-Triangle shard operations (§IV-A.2): upsert (index update) and
//! earliest-α delegation batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moods::{ObjectId, SiteId};
use peertrack::{IndexEntry, PrefixIndex};
use simnet::SimTime;
use std::hint::black_box;

fn filled(n: usize) -> PrefixIndex {
    let mut pi = PrefixIndex::new();
    for i in 0..n {
        pi.upsert(
            ObjectId::from_raw(&(i as u64).to_be_bytes()),
            IndexEntry { site: SiteId((i % 64) as u32), time: SimTime(i as u64), prev: None },
        );
    }
    pi
}

fn bench_triangle(c: &mut Criterion) {
    let mut g = c.benchmark_group("triangle_ops");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("upsert", n), &n, |b, &n| {
            let mut pi = filled(n);
            let mut i = n as u64;
            b.iter(|| {
                i += 1;
                pi.upsert(
                    ObjectId::from_raw(&i.to_be_bytes()),
                    IndexEntry { site: SiteId(0), time: SimTime(i), prev: None },
                );
            })
        });
        g.bench_with_input(BenchmarkId::new("delegate_half", n), &n, |b, &n| {
            b.iter_batched(
                || filled(n),
                |mut pi| black_box(pi.take_earliest(n / 2)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_triangle
}
criterion_main!(benches);
