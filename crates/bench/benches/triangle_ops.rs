//! Data-Triangle shard operations (§IV-A.2): upsert (index update) and
//! earliest-α delegation batches.

use bench::harness::Harness;
use moods::{ObjectId, SiteId};
use peertrack::{IndexEntry, PrefixIndex};
use simnet::SimTime;
use std::hint::black_box;

fn filled(n: usize) -> PrefixIndex {
    let mut pi = PrefixIndex::new();
    for i in 0..n {
        pi.upsert(
            ObjectId::from_raw(&(i as u64).to_be_bytes()),
            IndexEntry { site: SiteId((i % 64) as u32), time: SimTime(i as u64), prev: None },
        );
    }
    pi
}

fn main() {
    let mut h = Harness::from_env();
    let mut g = h.group("triangle_ops");
    for n in [1_000usize, 10_000] {
        let mut pi = filled(n);
        let mut i = n as u64;
        g.bench(format!("upsert/{n}"), || {
            i += 1;
            pi.upsert(
                ObjectId::from_raw(&i.to_be_bytes()),
                IndexEntry { site: SiteId(0), time: SimTime(i), prev: None },
            );
        });
        g.bench_batched(
            format!("delegate_half/{n}"),
            || filled(n),
            |mut pi| {
                black_box(pi.take_earliest(n / 2));
            },
        );
    }
    g.finish();
}
