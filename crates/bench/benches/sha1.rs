//! Throughput of the from-scratch SHA-1 — every object id and group id
//! derivation goes through it (§III footnote 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ids::Sha1;
use std::hint::black_box;

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| Sha1::digest(black_box(d)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha1
}
criterion_main!(benches);
