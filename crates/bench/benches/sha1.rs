//! Throughput of the from-scratch SHA-1 — every object id and group id
//! derivation goes through it (§III footnote 1).

use bench::harness::{Harness, Throughput};
use ids::Sha1;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_env();
    let mut g = h.group("sha1");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench(size, || {
            black_box(Sha1::digest(black_box(&data)));
        });
    }
    g.finish();
}
