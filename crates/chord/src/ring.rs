//! The ring: membership, routing, churn and maintenance.

use crate::node::{ChordNode, SUCCESSOR_LIST_LEN};
use ids::{Id, ID_BITS};
use std::collections::BTreeMap;

/// A key range `(start, end]` on the ring (clockwise, may wrap).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Node that held the keys before the membership change.
    pub from: Id,
    /// Node that must hold them afterwards.
    pub to: Id,
    /// Exclusive lower bound of the migrated range.
    pub start: Id,
    /// Inclusive upper bound of the migrated range.
    pub end: Id,
}

impl Migration {
    /// Does `key` fall inside the migrated range `(start, end]`?
    pub fn covers(&self, key: &Id) -> bool {
        key.in_interval_oc(&self.start, &self.end)
    }
}

/// Result of a successful join.
#[derive(Clone, Debug)]
pub struct JoinOutcome {
    /// Keys the new node takes over from its successor (`None` for the
    /// bootstrap node).
    pub migration: Option<Migration>,
    /// Overlay maintenance messages exchanged (lookup steps, notify,
    /// finger initialization).
    pub messages: u64,
}

/// Result of a voluntary leave.
#[derive(Clone, Debug)]
pub struct LeaveOutcome {
    /// Keys handed to the successor.
    pub migration: Migration,
    /// Overlay maintenance messages exchanged.
    pub messages: u64,
}

/// Routing outcome: the owner of a key plus the cost of finding it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupResult {
    /// The node responsible for the key (its successor on the ring).
    pub owner: Id,
    /// Overlay hops taken (0 when the querier already owns the key and
    /// its local state proves it).
    pub hops: u32,
    /// Every node visited, starting with the querier and ending with the
    /// owner. §IV-B's *intermediate node* optimisation inspects this path.
    pub path: Vec<Id>,
}

/// Routing failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupError {
    /// The querying node is not (or no longer) part of the ring.
    UnknownOrigin,
    /// The ring is empty.
    EmptyRing,
    /// Routing failed to converge (pathological staleness); callers
    /// should stabilize and retry.
    RoutingLoop,
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::UnknownOrigin => write!(f, "origin node not in ring"),
            LookupError::EmptyRing => write!(f, "ring is empty"),
            LookupError::RoutingLoop => write!(f, "lookup did not converge"),
        }
    }
}

impl std::error::Error for LookupError {}

/// The Chord ring.
///
/// Holds every live node's protocol state. All mutation goes through
/// [`Ring::join`] / [`Ring::leave`] / the stabilization methods, so the
/// structure can always be checked against the ground-truth successor
/// relation (see `invariants_hold` in the tests).
pub struct Ring {
    nodes: BTreeMap<Id, ChordNode>,
    /// Round-robin cursor for [`Ring::stabilize_round`]'s finger repair.
    fix_cursor: usize,
}

impl Ring {
    /// An empty ring.
    pub fn new() -> Ring {
        Ring { nodes: BTreeMap::new(), fix_cursor: 0 }
    }

    /// Number of live nodes (`Nn`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has joined yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Is `id` a live member?
    pub fn contains(&self, id: &Id) -> bool {
        self.nodes.contains_key(id)
    }

    /// Borrow a node's state.
    pub fn get(&self, id: &Id) -> Option<&ChordNode> {
        self.nodes.get(id)
    }

    /// Application handle registered at join time.
    pub fn app_index_of(&self, id: &Id) -> Option<usize> {
        self.nodes.get(id).map(|n| n.app_index)
    }

    /// Map a lookup path (ring ids, as in [`LookupResult::path`]) to
    /// application node indices, skipping ids that have since left the
    /// ring. Used to emit per-hop trace events for a routed lookup.
    pub fn app_path(&self, path: &[Id]) -> Vec<usize> {
        path.iter().filter_map(|id| self.app_index_of(id)).collect()
    }

    /// All member ids in ring (ascending) order.
    pub fn node_ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.nodes.keys().copied()
    }

    /// Ground-truth owner of `key`: the first live node clockwise from
    /// `key` (its *successor*). Used for assertions and for key-migration
    /// bookkeeping; routing uses [`Ring::lookup`].
    pub fn successor_of(&self, key: &Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(key..)
            .next()
            .map(|(id, _)| *id)
            .or_else(|| self.nodes.keys().next().copied())
    }

    /// Ground-truth chain of up to `k` distinct live nodes starting at
    /// `key`'s successor and walking clockwise — the *replica set* of
    /// the key range ending at `key`. When `key` is itself a member, the
    /// chain starts with that member (a node is the first holder of its
    /// own range). Shorter than `k` only when the ring has fewer nodes.
    pub fn successors_of(&self, key: &Id, k: usize) -> Vec<Id> {
        let Some(first) = self.successor_of(key) else {
            return Vec::new();
        };
        let mut chain = Vec::with_capacity(k.min(self.nodes.len()));
        let mut cur = first;
        for _ in 0..k.min(self.nodes.len()) {
            chain.push(cur);
            cur = self.successor_of(&cur.succ()).expect("non-empty");
        }
        chain
    }

    /// Ground-truth predecessor of a *member* id: the previous live node
    /// counter-clockwise.
    fn predecessor_of(&self, id: &Id) -> Option<Id> {
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(..id)
            .next_back()
            .map(|(i, _)| *i)
            .or_else(|| self.nodes.keys().next_back().copied())
    }

    /// First node joins: no migration, no messages.
    pub fn bootstrap(&mut self, id: Id, app_index: usize) -> JoinOutcome {
        assert!(self.nodes.is_empty(), "bootstrap on a non-empty ring");
        self.nodes.insert(id, ChordNode::solitary(id, app_index));
        JoinOutcome { migration: None, messages: 0 }
    }

    /// `new_id` joins via `bootstrap`, per the Chord join protocol:
    /// find `successor(new_id)` by routing from the bootstrap node,
    /// splice in, take over keys `(predecessor, new_id]`, initialize the
    /// finger table (with the consecutive-finger reuse optimisation), and
    /// notify neighbours.
    ///
    /// Returns the migration the application must apply to its stores.
    pub fn join(&mut self, bootstrap: Id, new_id: Id, app_index: usize) -> Result<JoinOutcome, LookupError> {
        if self.nodes.is_empty() {
            return Ok(self.bootstrap(new_id, app_index));
        }
        assert!(!self.nodes.contains_key(&new_id), "duplicate node id join");
        let mut messages = 0u64;

        // Locate our successor through the overlay.
        let found = self.lookup(bootstrap, new_id)?;
        messages += found.hops as u64;
        let succ_id = found.owner;
        let pred_id = self
            .get(&succ_id)
            .and_then(|s| s.predecessor)
            .filter(|p| self.contains(p))
            .unwrap_or_else(|| self.predecessor_of(&succ_id).expect("non-empty ring"));

        // Build the new node.
        let mut node = ChordNode::solitary(new_id, app_index);
        node.predecessor = Some(pred_id);
        node.successors = self.successor_chain(succ_id);
        // init_finger_table with the classic reuse optimisation: if the
        // target of finger i falls before finger i-1, reuse it (one local
        // check instead of a full lookup).
        let mut prev = succ_id;
        node.fingers.set(0, succ_id);
        messages += 1;
        for i in 1..ID_BITS {
            let target = new_id.add_pow2(i);
            if target.in_interval_oc(&new_id, &prev) {
                node.fingers.set(i, prev);
            } else {
                let r = self.lookup(succ_id, target)?;
                messages += r.hops as u64;
                node.fingers.set(i, r.owner);
                prev = r.owner;
            }
        }
        self.nodes.insert(new_id, node);

        // Splice neighbour pointers (notify messages).
        if let Some(s) = self.nodes.get_mut(&succ_id) {
            s.predecessor = Some(new_id);
            messages += 1;
        }
        if let Some(p) = self.nodes.get_mut(&pred_id) {
            if p.successors[0] == succ_id || p.id == succ_id {
                p.successors.insert(0, new_id);
                p.successors.truncate(SUCCESSOR_LIST_LEN);
            }
            messages += 1;
        }
        self.refresh_successor_chain(new_id);
        self.refresh_successor_chain(pred_id);

        Ok(JoinOutcome {
            migration: Some(Migration { from: succ_id, to: new_id, start: pred_id, end: new_id }),
            messages,
        })
    }

    /// Voluntary departure: keys `(predecessor, id]` move to the
    /// successor, neighbours are re-linked; other nodes' fingers remain
    /// stale until stabilization (routing tolerates this).
    ///
    /// # Panics
    /// If `id` is not a member or is the last node (an application-level
    /// decision is needed for what the last repository's data means).
    pub fn leave(&mut self, id: Id) -> LeaveOutcome {
        assert!(self.nodes.contains_key(&id), "leave of unknown node");
        assert!(self.nodes.len() > 1, "last node cannot leave");
        let pred = self.predecessor_of(&id).expect("ring has >1 node");
        let node = self.nodes.remove(&id).expect("checked above");
        let succ = self.successor_of(&id).expect("ring non-empty after removal");

        // Transfer-and-notify messages.
        let mut messages = 1u64; // data handoff notification
        if let Some(s) = self.nodes.get_mut(&succ) {
            if s.predecessor == Some(id) {
                s.predecessor = Some(pred);
            }
            messages += 1;
        }
        if let Some(p) = self.nodes.get_mut(&pred) {
            p.successors.retain(|x| *x != id);
            if p.successors.is_empty() || p.successors[0] != succ {
                p.successors.insert(0, succ);
            }
            p.successors.truncate(SUCCESSOR_LIST_LEN);
            messages += 1;
        }
        self.refresh_successor_chain(pred);
        let _ = node;

        LeaveOutcome {
            migration: Migration { from: id, to: succ, start: pred, end: id },
            messages,
        }
    }

    /// Abrupt failure: like [`Ring::leave`] but the departing node sends
    /// nothing; neighbours discover the failure during stabilization.
    /// Data in `(pred, id]` is lost until the application re-indexes
    /// (PeerTrack's stores are soft state rebuilt by indexing traffic).
    pub fn fail(&mut self, id: Id) {
        assert!(self.nodes.contains_key(&id), "fail of unknown node");
        assert!(self.nodes.len() > 1, "last node cannot fail");
        self.nodes.remove(&id);
        // No pointer repair: that is stabilization's job.
    }

    /// Iterative Chord routing from `from` towards `key` using finger
    /// tables and successor lists only. Dead pointers are skipped exactly
    /// as a timeout would cause in the real protocol.
    pub fn lookup(&self, from: Id, key: Id) -> Result<LookupResult, LookupError> {
        if self.nodes.is_empty() {
            return Err(LookupError::EmptyRing);
        }
        if !self.nodes.contains_key(&from) {
            return Err(LookupError::UnknownOrigin);
        }
        let mut cur = from;
        let mut hops = 0u32;
        let mut path = vec![from];
        let limit = (2 * self.nodes.len() + ID_BITS) as u32;

        loop {
            let node = &self.nodes[&cur];
            let succ = self.first_live_successor(node);
            if key.in_interval_oc(&cur, &succ) {
                if succ != cur {
                    hops += 1;
                    path.push(succ);
                }
                return Ok(LookupResult { owner: succ, hops, path });
            }
            let next = node.closest_preceding(&key, |id| self.nodes.contains_key(id));
            let step = if next == cur { succ } else { next };
            if step == cur {
                // Ring of one that doesn't own the key is impossible
                // (interval check above covers it); treat as converged.
                return Ok(LookupResult { owner: cur, hops, path });
            }
            cur = step;
            hops += 1;
            path.push(cur);
            if hops > limit {
                return Err(LookupError::RoutingLoop);
            }
        }
    }

    /// First live entry in `node`'s successor list, repaired from ground
    /// truth when the whole list is dead (models Chord's fallback to
    /// re-join-by-lookup, which in practice always converges for the
    /// churn rates evaluated).
    fn first_live_successor(&self, node: &ChordNode) -> Id {
        node.successors
            .iter()
            .copied()
            .find(|s| self.nodes.contains_key(s))
            .unwrap_or_else(|| {
                self.successor_of(&node.id.succ()).expect("ring non-empty")
            })
    }

    /// Ground-truth chain of the next [`SUCCESSOR_LIST_LEN`] live nodes
    /// starting at (and including) `first`.
    fn successor_chain(&self, first: Id) -> Vec<Id> {
        let mut chain = Vec::with_capacity(SUCCESSOR_LIST_LEN);
        let mut cur = first;
        for _ in 0..SUCCESSOR_LIST_LEN {
            chain.push(cur);
            cur = self.successor_of(&cur.succ()).expect("non-empty");
        }
        chain
    }

    fn refresh_successor_chain(&mut self, id: Id) {
        if !self.nodes.contains_key(&id) {
            return;
        }
        let chain = self.successor_chain(self.successor_of(&id.succ()).expect("non-empty"));
        if let Some(n) = self.nodes.get_mut(&id) {
            n.successors = chain;
        }
    }

    /// One periodic maintenance round, as Chord's `stabilize` +
    /// `fix_fingers`: every node refreshes its successor list and
    /// predecessor, and repairs **one** finger (round-robin). Returns the
    /// number of maintenance messages this round cost.
    pub fn stabilize_round(&mut self) -> u64 {
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        let mut messages = 0u64;
        let finger_i = self.fix_cursor % ID_BITS;
        self.fix_cursor += 1;
        for id in ids {
            // successor/predecessor refresh: 2 messages (stabilize+notify)
            let pred = self.predecessor_of(&id).expect("non-empty");
            self.refresh_successor_chain(id);
            if let Some(n) = self.nodes.get_mut(&id) {
                n.predecessor = Some(pred);
            }
            messages += 2;
            // fix one finger via a lookup
            let target = id.add_pow2(finger_i);
            if let Ok(r) = self.lookup(id, target) {
                messages += r.hops as u64;
                if let Some(n) = self.nodes.get_mut(&id) {
                    n.fingers.set(finger_i, r.owner);
                }
            }
        }
        messages
    }

    /// Crash-aware recovery: run incremental [`Ring::stabilize_round`]s
    /// until [`Ring::check_converged`] passes, asserting convergence
    /// within `max_rounds`. This is the post-crash repair path — unlike
    /// [`Ring::stabilize_all`] it exercises the same per-round repair a
    /// real deployment would, so a crash that stabilization *cannot*
    /// recover from (e.g. a partitioned successor chain) fails loudly
    /// instead of being papered over by the ground-truth rebuild.
    /// Returns the total maintenance messages spent.
    pub fn stabilize_until_converged(&mut self, max_rounds: usize) -> Result<u64, String> {
        let mut messages = 0u64;
        for _ in 0..max_rounds {
            messages += self.stabilize_round();
            if self.check_converged().is_ok() {
                return Ok(messages);
            }
        }
        self.check_converged().map(|()| messages).map_err(|e| {
            format!("ring failed to converge within {max_rounds} rounds: {e}")
        })
    }

    /// Full repair: recompute every node's pointers from ground truth.
    /// Equivalent to running `stabilize_round` until fixpoint; used to
    /// start experiments from a converged overlay, as the paper's
    /// measurements do (OverSim's warm-up phase).
    pub fn stabilize_all(&mut self) {
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for id in &ids {
            let pred = self.predecessor_of(id).expect("non-empty");
            let chain = self.successor_chain(self.successor_of(&id.succ()).expect("non-empty"));
            let mut fingers = Vec::with_capacity(ID_BITS);
            for i in 0..ID_BITS {
                fingers.push(self.successor_of(&id.add_pow2(i)).expect("non-empty"));
            }
            let n = self.nodes.get_mut(id).expect("iterating live ids");
            n.predecessor = Some(pred);
            n.successors = chain;
            for (i, f) in fingers.into_iter().enumerate() {
                n.fingers.set(i, f);
            }
        }
    }

    /// Verify the structural invariants (used by tests and debug builds):
    /// successor pointers match ground truth and every finger entry is a
    /// live node ≥ its target (after full stabilization).
    pub fn check_converged(&self) -> Result<(), String> {
        for (id, node) in &self.nodes {
            let truth = self.successor_of(&id.succ()).expect("non-empty");
            if node.successor() != truth {
                return Err(format!("node {id:?}: successor {:?} != truth {truth:?}", node.successor()));
            }
            let pred_truth = self.predecessor_of(id).expect("non-empty");
            if node.predecessor != Some(pred_truth) {
                return Err(format!("node {id:?}: predecessor {:?} != truth {pred_truth:?}", node.predecessor));
            }
            for i in 0..ID_BITS {
                let f = node.fingers.get(i);
                let t = self.successor_of(&id.add_pow2(i)).expect("non-empty");
                if f != t {
                    return Err(format!("node {id:?}: finger {i} {f:?} != truth {t:?}"));
                }
            }
        }
        Ok(())
    }
}

impl Default for Ring {
    fn default() -> Self {
        Ring::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptiny::prelude::*;
    use detrand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

    /// Build a converged ring of `n` nodes with deterministic random ids.
    fn build_ring(n: usize, seed: u64) -> (Ring, Vec<Id>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ring = Ring::new();
        let mut ids = Vec::new();
        for i in 0..n {
            let id = Id::random(&mut rng);
            if i == 0 {
                ring.bootstrap(id, i);
            } else {
                ring.join(ids[0], id, i).unwrap();
            }
            ids.push(id);
        }
        ring.stabilize_all();
        (ring, ids)
    }

    #[test]
    fn bootstrap_owns_everything() {
        let mut ring = Ring::new();
        let id = Id::from_u64(42);
        ring.bootstrap(id, 0);
        assert_eq!(ring.successor_of(&Id::from_u64(7)), Some(id));
        let r = ring.lookup(id, Id::from_u64(999)).unwrap();
        assert_eq!(r.owner, id);
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn lookup_agrees_with_ground_truth() {
        let (ring, ids) = build_ring(64, 1);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            let key = Id::random(&mut rng);
            let from = ids[rng.gen_range(0..ids.len())];
            let r = ring.lookup(from, key).unwrap();
            assert_eq!(Some(r.owner), ring.successor_of(&key));
            assert_eq!(*r.path.first().unwrap(), from);
            assert_eq!(*r.path.last().unwrap(), r.owner);
        }
    }

    #[test]
    fn hops_are_logarithmic() {
        let (ring, ids) = build_ring(256, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = 0u64;
        let trials = 2_000;
        for _ in 0..trials {
            let key = Id::random(&mut rng);
            let from = ids[rng.gen_range(0..ids.len())];
            total += ring.lookup(from, key).unwrap().hops as u64;
        }
        let avg = total as f64 / trials as f64;
        // Chord: ~(1/2)·log2 N = 4; allow generous slack.
        assert!(avg < 8.0, "average hops {avg} too high for 256 nodes");
        assert!(avg > 1.0, "average hops {avg} implausibly low");
    }

    #[test]
    fn join_migration_covers_exactly_new_range() {
        let (mut ring, ids) = build_ring(16, 3);
        let new = Id::from_u64(12345);
        let out = ring.join(ids[0], new, 16).unwrap();
        let m = out.migration.unwrap();
        assert_eq!(m.to, new);
        assert_eq!(m.end, new);
        assert!(m.covers(&new));
        assert!(!m.covers(&m.start));
        // After join the new node owns its own id.
        assert_eq!(ring.successor_of(&new), Some(new));
        // Keys just past the new node belong to the old owner still.
        assert_eq!(ring.successor_of(&new.succ()), Some(m.from));
    }

    #[test]
    fn convergence_check_passes_after_stabilize_all() {
        let (ring, _) = build_ring(48, 4);
        ring.check_converged().unwrap();
    }

    #[test]
    fn leave_hands_keys_to_successor() {
        let (mut ring, ids) = build_ring(16, 5);
        let victim = ids[7];
        let succ_truth = ring.successor_of(&victim.succ()).unwrap();
        let out = ring.leave(victim);
        assert_eq!(out.migration.from, victim);
        assert_eq!(out.migration.to, succ_truth);
        assert!(!ring.contains(&victim));
        // Keys previously owned by the victim now route to its successor.
        ring.stabilize_all();
        let r = ring.lookup(ids[0], victim).unwrap();
        assert_eq!(r.owner, succ_truth);
    }

    #[test]
    fn crash_recovery_converges_within_finger_rotation() {
        // After abrupt failures, incremental stabilization must restore
        // full convergence within one finger-cursor rotation (each round
        // fixes one finger index at every node) — the bound crash
        // recovery asserts in the full-stack crash path.
        let (mut ring, ids) = build_ring(24, 11);
        ring.fail(ids[3]);
        ring.fail(ids[17]);
        assert!(ring.check_converged().is_err(), "crash must leave stale pointers");
        let msgs = ring
            .stabilize_until_converged(ID_BITS + 1)
            .expect("stabilization repairs crashes");
        assert!(msgs > 0);
        ring.check_converged().unwrap();
        // Converged means idempotent: another bounded run is cheap.
        ring.stabilize_until_converged(1).unwrap();
    }

    #[test]
    fn unrecoverable_bound_reports_error() {
        let (mut ring, ids) = build_ring(12, 13);
        ring.fail(ids[5]);
        // Zero rounds cannot repair anything: the bound must fail loudly.
        assert!(ring.stabilize_until_converged(0).is_err());
    }

    #[test]
    fn routing_survives_unstabilized_failures() {
        let (mut ring, ids) = build_ring(64, 6);
        let mut rng = StdRng::seed_from_u64(7);
        // Kill 8 random non-bootstrap nodes without repair.
        let mut victims = ids[1..].to_vec();
        victims.shuffle(&mut rng);
        for v in &victims[..8] {
            ring.fail(*v);
        }
        // All lookups from live nodes still converge to ground truth.
        let live: Vec<Id> = ring.node_ids().collect();
        for _ in 0..300 {
            let key = Id::random(&mut rng);
            let from = live[rng.gen_range(0..live.len())];
            let r = ring.lookup(from, key).expect("lookup should survive churn");
            assert_eq!(Some(r.owner), ring.successor_of(&key));
        }
    }

    #[test]
    fn stabilize_rounds_converge_fingers_after_churn() {
        let (mut ring, ids) = build_ring(32, 8);
        for v in &ids[20..28] {
            ring.fail(*v);
        }
        // 160 finger slots × round-robin repair + successor refresh.
        for _ in 0..ID_BITS {
            ring.stabilize_round();
        }
        ring.check_converged().unwrap();
    }

    #[test]
    fn join_counts_messages() {
        let (mut ring, ids) = build_ring(32, 9);
        let out = ring.join(ids[0], Id::from_u64(999_999), 32).unwrap();
        assert!(out.messages > 0, "join must cost maintenance traffic");
        // With the reuse optimisation, far fewer than 160 lookups happen.
        assert!(out.messages < 600, "join cost {} looks unoptimised", out.messages);
    }

    #[test]
    fn lookup_from_unknown_origin_fails() {
        let (ring, _) = build_ring(4, 10);
        assert_eq!(
            ring.lookup(Id::from_u64(31337), Id::from_u64(1)).unwrap_err(),
            LookupError::UnknownOrigin
        );
    }

    #[test]
    fn empty_ring_lookup_fails() {
        let ring = Ring::new();
        assert_eq!(
            ring.lookup(Id::from_u64(1), Id::from_u64(2)).unwrap_err(),
            LookupError::EmptyRing
        );
    }

    #[test]
    fn successor_of_wraps_around() {
        let mut ring = Ring::new();
        ring.bootstrap(Id::from_u64(10), 0);
        ring.join(Id::from_u64(10), Id::from_u64(100), 1).unwrap();
        // A key past the highest node wraps to the lowest.
        assert_eq!(ring.successor_of(&Id::from_u64(200)), Some(Id::from_u64(10)));
        assert_eq!(ring.successor_of(&Id::from_u64(50)), Some(Id::from_u64(100)));
        assert_eq!(ring.successor_of(&Id::from_u64(100)), Some(Id::from_u64(100)));
    }

    proptiny! {
        #![proptiny_config(Config::with_cases(24))]

        /// Finger-table routing must equal the naive ring scan for any
        /// membership and key set.
        #[test]
        fn prop_lookup_matches_truth(seed in any::<u64>(), n in 2usize..48, queries in 1usize..32) {
            let (ring, ids) = build_ring(n, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
            for _ in 0..queries {
                let key = Id::random(&mut rng);
                let from = ids[rng.gen_range(0..ids.len())];
                let r = ring.lookup(from, key).unwrap();
                prop_assert_eq!(Some(r.owner), ring.successor_of(&key));
            }
        }

        /// Join then leave of the same node restores ground-truth
        /// ownership for every key.
        #[test]
        fn prop_join_leave_roundtrip(seed in any::<u64>(), n in 2usize..24) {
            let (mut ring, _) = build_ring(n, seed);
            let before: Vec<(Id, Id)> = {
                let mut rng = StdRng::seed_from_u64(seed ^ 1);
                (0..16).map(|_| {
                    let k = Id::random(&mut rng);
                    (k, ring.successor_of(&k).unwrap())
                }).collect()
            };
            let new = Id::hash(&seed.to_be_bytes());
            prop_assume!(!ring.contains(&new));
            let boot = ring.node_ids().next().unwrap();
            ring.join(boot, new, 999).unwrap();
            ring.leave(new);
            ring.stabilize_all();
            for (k, owner) in before {
                prop_assert_eq!(ring.successor_of(&k), Some(owner));
            }
        }

        /// Migration ranges from a join partition ownership: keys inside
        /// the range now belong to the new node, keys outside keep their
        /// previous owner.
        #[test]
        fn prop_join_migration_partitions(seed in any::<u64>(), n in 2usize..24) {
            let (mut ring, _) = build_ring(n, seed);
            let new = Id::hash(&seed.to_le_bytes());
            prop_assume!(!ring.contains(&new));
            let mut rng = StdRng::seed_from_u64(seed ^ 2);
            let keys: Vec<Id> = (0..32).map(|_| Id::random(&mut rng)).collect();
            let owners_before: Vec<Id> =
                keys.iter().map(|k| ring.successor_of(k).unwrap()).collect();
            let boot = ring.node_ids().next().unwrap();
            let m = ring.join(boot, new, 0).unwrap().migration.unwrap();
            for (k, owner_before) in keys.iter().zip(owners_before) {
                let owner_after = ring.successor_of(k).unwrap();
                if m.covers(k) {
                    prop_assert_eq!(owner_after, new);
                    prop_assert_eq!(owner_before, m.from);
                } else {
                    prop_assert_eq!(owner_after, owner_before);
                }
            }
        }
    }
}
