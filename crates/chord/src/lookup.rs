//! The iterative lookup as a driveable state machine.
//!
//! [`Ring::lookup`](crate::Ring::lookup) walks the whole ring inside
//! one function call because the simulator holds every node's state in
//! one process. A real deployment can't: the origin node must *ask*
//! each hop for its routing decision over the network. This module
//! factors the loop into two halves that the daemon runs on opposite
//! ends of a socket:
//!
//! * [`answer_step`] — one node's purely local routing decision for a
//!   key (its half of the iterative protocol);
//! * [`LookupDriver`] — the origin-side state machine that strings the
//!   answers together, producing the exact same
//!   [`LookupResult`](crate::LookupResult) (owner, hop count *and*
//!   path) as `Ring::lookup` would.
//!
//! The equivalence is asserted property-style below: driving the
//! machine with answers computed from each node's own state reproduces
//! `Ring::lookup` verbatim — which is what makes the daemon's hop
//! accounting comparable to the simulator's.

use crate::node::ChordNode;
use crate::ring::{LookupError, LookupResult};
use ids::{Id, ID_BITS};

/// One node's answer to "where next for `key`?".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepAnswer {
    /// The key falls in `(self, successor]`: this id owns it.
    Owner(Id),
    /// Forward the lookup to this closer node.
    Forward(Id),
}

/// What the driver needs next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupState {
    /// Ask this node (via [`answer_step`] on its state, locally or over
    /// the network) and feed the answer to [`LookupDriver::answer`].
    Ask(Id),
    /// The lookup converged.
    Done(LookupResult),
    /// The lookup exceeded its hop limit.
    Failed(LookupError),
}

/// Compute one node's routing decision for `key` from its own state
/// only — the remote half of the iterative lookup. `alive` is the
/// node's local liveness view (in the daemon: "have I been told this
/// peer exists"; in tests: ring membership). Mirrors one iteration of
/// `Ring::lookup`, including the dead-finger skipping and the
/// converged-ring-of-one edge case.
pub fn answer_step(node: &ChordNode, key: &Id, alive: impl Fn(&Id) -> bool) -> StepAnswer {
    let succ = node
        .successors
        .iter()
        .copied()
        .find(|s| alive(s))
        .unwrap_or(node.id);
    if key.in_interval_oc(&node.id, &succ) {
        return StepAnswer::Owner(succ);
    }
    let next = node.closest_preceding(key, alive);
    let step = if next == node.id { succ } else { next };
    if step == node.id {
        return StepAnswer::Owner(node.id);
    }
    StepAnswer::Forward(step)
}

/// Origin-side lookup state machine.
///
/// ```text
/// let mut d = LookupDriver::new(origin, key, ring_len);
/// loop {
///     match d.state() {
///         LookupState::Ask(node) => d.answer(ask_over_network(node, key)),
///         LookupState::Done(result) => break result,
///         LookupState::Failed(err) => return Err(err),
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct LookupDriver {
    key: Id,
    cur: Id,
    hops: u32,
    path: Vec<Id>,
    limit: u32,
    outcome: Option<Result<LookupResult, LookupError>>,
}

impl LookupDriver {
    /// Start a lookup for `key` at `from`. `ring_len` bounds the walk
    /// the same way `Ring::lookup` does (`2·len + ID_BITS` hops).
    pub fn new(from: Id, key: Id, ring_len: usize) -> LookupDriver {
        LookupDriver {
            key,
            cur: from,
            hops: 0,
            path: vec![from],
            limit: (2 * ring_len + ID_BITS) as u32,
            outcome: None,
        }
    }

    /// The key being looked up.
    pub fn key(&self) -> Id {
        self.key
    }

    /// Current state: who to ask next, or the outcome.
    pub fn state(&self) -> LookupState {
        match &self.outcome {
            None => LookupState::Ask(self.cur),
            Some(Ok(result)) => LookupState::Done(result.clone()),
            Some(Err(e)) => LookupState::Failed(*e),
        }
    }

    /// Feed the answer from the node [`state`](LookupDriver::state)
    /// asked for. Panics if the lookup already finished.
    pub fn answer(&mut self, answer: StepAnswer) {
        assert!(self.outcome.is_none(), "lookup already finished");
        match answer {
            StepAnswer::Owner(owner) => {
                if owner != self.cur {
                    self.hops += 1;
                    self.path.push(owner);
                }
                self.outcome =
                    Some(Ok(LookupResult { owner, hops: self.hops, path: self.path.clone() }));
            }
            StepAnswer::Forward(next) => {
                self.cur = next;
                self.hops += 1;
                self.path.push(next);
                if self.hops > self.limit {
                    self.outcome = Some(Err(LookupError::RoutingLoop));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Ring;

    fn build_ring(n: usize) -> Ring {
        let mut ring = Ring::new();
        let ids: Vec<Id> = (0..n).map(|i| Id::hash_str(&format!("site-{i}"))).collect();
        ring.bootstrap(ids[0], 0);
        for (i, id) in ids.iter().enumerate().skip(1) {
            ring.join(ids[0], *id, i).expect("join");
        }
        ring.stabilize_all();
        ring
    }

    /// Drive the state machine with answers computed from each node's
    /// own state — exactly what the daemon does over sockets.
    fn drive(ring: &Ring, from: Id, key: Id) -> Result<LookupResult, LookupError> {
        let mut driver = LookupDriver::new(from, key, ring.len());
        loop {
            match driver.state() {
                LookupState::Ask(node) => {
                    let state = ring.get(&node).expect("asked node must be live");
                    driver.answer(answer_step(state, &key, |id| ring.contains(id)));
                }
                LookupState::Done(result) => return Ok(result),
                LookupState::Failed(e) => return Err(e),
            }
        }
    }

    #[test]
    fn driver_reproduces_ring_lookup_exactly() {
        for n in [1usize, 2, 3, 5, 16, 40] {
            let ring = build_ring(n);
            let origins: Vec<Id> = (0..n).map(|i| Id::hash_str(&format!("site-{i}"))).collect();
            for (i, from) in origins.iter().enumerate() {
                for k in 0..25u64 {
                    let key = Id::hash_str(&format!("key-{i}-{k}"));
                    let reference = ring.lookup(*from, key).expect("ring lookup");
                    let driven = drive(&ring, *from, key).expect("driven lookup");
                    assert_eq!(driven, reference, "n={n} from={i} k={k}");
                }
            }
        }
    }

    #[test]
    fn driver_self_lookup_zero_hops_when_owner() {
        let ring = build_ring(8);
        let from = Id::hash_str("site-0");
        // A key the origin itself owns: successor(pred, from] — use the
        // origin id itself, which it always owns.
        let result = drive(&ring, from, from).expect("lookup");
        let reference = ring.lookup(from, from).expect("ring lookup");
        assert_eq!(result, reference);
    }

    #[test]
    fn hop_limit_fires_on_adversarial_answers() {
        let mut driver = LookupDriver::new(Id::from_u64(1), Id::from_u64(99), 2);
        // An answering peer that keeps bouncing the lookup between two
        // nodes (stale or hostile) must trip the RoutingLoop guard, not
        // spin forever.
        for round in 0.. {
            match driver.state() {
                LookupState::Ask(_) => {
                    let next = Id::from_u64(2 + (round % 2));
                    driver.answer(StepAnswer::Forward(next));
                }
                LookupState::Failed(e) => {
                    assert_eq!(e, LookupError::RoutingLoop);
                    break;
                }
                LookupState::Done(_) => panic!("must not converge"),
            }
        }
    }
}
