//! Per-node Chord state: finger table, successor list, predecessor.

use ids::{Id, ID_BITS};

/// Length of the successor list (Chord's `r`). `r = 4` tolerates three
/// simultaneous adjacent failures, plenty for the paper's churn levels.
pub const SUCCESSOR_LIST_LEN: usize = 4;

/// The finger table: entry `i` should point at `successor(n + 2^i)`.
///
/// Entries may be stale after churn; the routing layer skips entries that
/// no longer correspond to live nodes, as real Chord does after a timeout.
#[derive(Clone)]
pub struct FingerTable {
    /// `fingers[i] = successor(owner + 2^i)`, possibly stale.
    entries: Vec<Id>,
}

impl FingerTable {
    /// A finger table where every entry points at the owner itself
    /// (the state of a ring of one).
    pub fn self_only(owner: Id) -> FingerTable {
        FingerTable { entries: vec![owner; ID_BITS] }
    }

    /// Entry `i` (target `owner + 2^i`).
    pub fn get(&self, i: usize) -> Id {
        self.entries[i]
    }

    /// Overwrite entry `i`.
    pub fn set(&mut self, i: usize, id: Id) {
        self.entries[i] = id;
    }

    /// Iterate entries from the *largest* span downwards, the order
    /// `closest_preceding_finger` scans.
    pub fn iter_desc(&self) -> impl Iterator<Item = (usize, Id)> + '_ {
        (0..ID_BITS).rev().map(move |i| (i, self.entries[i]))
    }

    /// Number of distinct nodes referenced.
    pub fn distinct_nodes(&self) -> usize {
        let mut v: Vec<Id> = self.entries.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }
}

/// One Chord participant.
#[derive(Clone)]
pub struct ChordNode {
    /// The node's ring identifier.
    pub id: Id,
    /// Opaque application handle (PeerTrack stores the simnet node index).
    pub app_index: usize,
    /// First live successor candidates, nearest first (Chord's `r`-list).
    pub successors: Vec<Id>,
    /// Predecessor pointer (`None` only transiently during bootstrap).
    pub predecessor: Option<Id>,
    /// The finger table.
    pub fingers: FingerTable,
}

impl ChordNode {
    /// A fresh node that believes it is alone on the ring.
    pub fn solitary(id: Id, app_index: usize) -> ChordNode {
        ChordNode {
            id,
            app_index,
            successors: vec![id; SUCCESSOR_LIST_LEN],
            predecessor: Some(id),
            fingers: FingerTable::self_only(id),
        }
    }

    /// The node's immediate successor (first entry of the list).
    pub fn successor(&self) -> Id {
        self.successors[0]
    }

    /// The best finger strictly inside `(self.id, key)` according to this
    /// node's (possibly stale) table, filtered by `alive`. Falls back to
    /// live successor-list entries, then to `self.id` (meaning: no
    /// progress available from fingers, route via successor).
    pub fn closest_preceding(&self, key: &Id, alive: impl Fn(&Id) -> bool) -> Id {
        for (_, f) in self.fingers.iter_desc() {
            if f != self.id && f.in_interval_oo(&self.id, key) && alive(&f) {
                return f;
            }
        }
        // Successor-list fallback, farthest-first for maximum progress.
        for s in self.successors.iter().rev() {
            if *s != self.id && s.in_interval_oo(&self.id, key) && alive(s) {
                return *s;
            }
        }
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(v: u64) -> Id {
        Id::from_u64(v)
    }

    #[test]
    fn solitary_points_to_self() {
        let n = ChordNode::solitary(id(10), 0);
        assert_eq!(n.successor(), id(10));
        assert_eq!(n.predecessor, Some(id(10)));
        assert_eq!(n.fingers.distinct_nodes(), 1);
    }

    #[test]
    fn closest_preceding_picks_largest_span_inside_interval() {
        let mut n = ChordNode::solitary(id(0), 0);
        // Fingers: entry 3 → 8, entry 5 → 32, entry 7 → 128.
        n.fingers.set(3, id(8));
        n.fingers.set(5, id(32));
        n.fingers.set(7, id(128));
        // Key 100: 32 is the closest live finger preceding it (128 > 100).
        let got = n.closest_preceding(&id(100), |_| true);
        assert_eq!(got, id(32));
        // Key 200: 128 qualifies.
        assert_eq!(n.closest_preceding(&id(200), |_| true), id(128));
    }

    #[test]
    fn closest_preceding_skips_dead_fingers() {
        let mut n = ChordNode::solitary(id(0), 0);
        n.fingers.set(5, id(32));
        n.fingers.set(3, id(8));
        let got = n.closest_preceding(&id(100), |x| *x != id(32));
        assert_eq!(got, id(8));
    }

    #[test]
    fn closest_preceding_falls_back_to_successor_list() {
        let mut n = ChordNode::solitary(id(0), 0);
        n.successors = vec![id(4), id(6), id(9), id(12)];
        // All fingers are self; key 10 → farthest live successor < 10.
        let got = n.closest_preceding(&id(10), |_| true);
        assert_eq!(got, id(9));
    }

    #[test]
    fn closest_preceding_returns_self_when_stuck() {
        let n = ChordNode::solitary(id(0), 0);
        assert_eq!(n.closest_preceding(&id(10), |_| true), id(0));
    }

    #[test]
    fn finger_iter_desc_order() {
        let n = ChordNode::solitary(id(0), 0);
        let idx: Vec<usize> = n.fingers.iter_desc().map(|(i, _)| i).take(3).collect();
        assert_eq!(idx, vec![159, 158, 157]);
    }
}
