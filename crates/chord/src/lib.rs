//! A Chord distributed hash table, simulated deterministically.
//!
//! The paper builds its indexing layer "on top of the DHT (Distributed
//! Hash Table) based overlay network" and "adopt\[s\] Chord \[26\] as the
//! overlay for its adaptiveness as nodes join and leave" (§III). This
//! crate implements Chord (Stoica et al., SIGCOMM 2001) as a deterministic
//! in-process structure:
//!
//! * every node keeps a 160-entry **finger table**, a **successor list**
//!   and a predecessor pointer, exactly as in the protocol;
//! * [`Ring::lookup`] routes **iteratively through finger tables** — not
//!   through global knowledge — counting overlay hops and recording the
//!   routing path (the path is what lets PeerTrack answer queries at an
//!   *intermediate node*, §IV-B);
//! * [`Ring::join`] and [`Ring::leave`] reshape the ring and report which
//!   key ranges must migrate ("when new peer joins, only a small portion
//!   of nodes will migrate their data", §IV-B);
//! * stale fingers after churn are routed around via successor lists and
//!   repaired by [`Ring::stabilize_all`] / [`Ring::stabilize_round`].
//!
//! Message costs are *reported* (hop counts, maintenance message tallies)
//! rather than sent through a socket: the consumer charges them to a
//! [`simnet`](../simnet/index.html) metrics tally, which is precisely the
//! level at which OverSim's statistics were collected in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lookup;
pub mod node;
pub mod ring;

pub use lookup::{answer_step, LookupDriver, LookupState, StepAnswer};
pub use node::{ChordNode, FingerTable, SUCCESSOR_LIST_LEN};
pub use ring::{JoinOutcome, LeaveOutcome, LookupError, LookupResult, Migration, Ring};
